"""Batched, parallel, cached execution of design points.

The engine turns "call ``run_experiment`` in a loop" into a scheduled
workload:

* **plan** -- an :class:`ExecutionPlan` collects design points up front
  (:meth:`ExecutionPlan.add` returns the point's
  :class:`~repro.engine.key.ExperimentKey` and deduplicates repeats);
* **execute** -- :meth:`ExecutionPlan.execute` resolves every planned
  point at once: first from the in-memory memo, then from the
  persistent :class:`~repro.engine.store.ResultStore`, and only then by
  simulating -- serially, or fanned out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` when the engine is
  configured with ``jobs > 1``;
* **resolve** -- :meth:`ExecutionPlan.resolve` hands back the
  :class:`~repro.cpu.result.SimulationResult` for a key.

Worker protocol: a worker receives one *chunk* of keys in dict form,
rebuilds each design point (the workload comes from the benchmark
catalog by name), runs the bare simulations, and ships the results back
as dict payloads -- ``{"status": "ok", ...}`` or ``{"status": "error",
...}`` carrying a failure.  Chunks are planned largest-estimated-cost
first (:mod:`repro.engine.dispatch`) and self-scheduled: idle workers
pull the next chunk from the pool's shared queue, which balances load
like work stealing without per-worker deques.  The pool itself is
*persistent* -- created once per engine configuration and reused across
every figure of a CLI invocation -- and workers stream lightweight
``point-start`` / ``point-done`` marks to the parent over a plain
``multiprocessing.Queue`` for the wedge backstop, per-worker
utilization counters, and live progress.

Chunk results complete out of order; determinism is re-imposed at
resolve time: successful payloads are absorbed immediately (results are
keyed, the ledger sorts rows by digest, checkpoint marks are a set),
while failure payloads are buffered and replayed through the parent's
retry policy *in plan order* -- the exact order a serial run would have
hit them -- so failure-log records, retries, and gap sentinels are
bit-identical to serial execution.

Points whose :class:`~repro.workloads.generator.WorkloadSpec` is not
the catalog entry for its name (custom workloads) cannot be rebuilt in
a worker and are evaluated in the parent; they are also kept out of the
disk store, whose content address covers only the workload *name*.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.cpu.result import SimulationResult
from repro.engine.key import ExperimentKey
from repro.engine.serialize import result_from_dict, result_to_dict
from repro.engine.store import ResultStore
from repro.observability import spans as obs_spans
from repro.observability import telemetry
from repro.observability import trace as obs_trace
from repro.observability.events import (
    ENGINE_CACHE_HIT,
    ENGINE_EXECUTE,
    ENGINE_PLAN,
    ENGINE_RESUME,
    ENGINE_RUN_RECORD,
)
from repro.workloads.catalog import BENCHMARKS, benchmark

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.experiment import ExperimentSettings
    from repro.workloads.generator import WorkloadSpec


class WorkerFailureError(RuntimeError):
    """A design point failed inside a worker with no failure log active."""

    def __init__(self, key: ExperimentKey, error_type: str, message: str):
        super().__init__(f"{key.label}: {error_type}: {message}")
        self.key = key
        self.error_type = error_type
        self.message = message


def _is_catalog_spec(spec: "WorkloadSpec") -> bool:
    """True when a worker can rebuild ``spec`` from the catalog by name."""
    return BENCHMARKS.get(spec.name) == spec


def run_point_payload(key_dict: dict) -> dict:
    """Worker entry point: simulate one design point from its dict form.

    Must stay a module-level function so every multiprocessing start
    method can import it.  Settings arrive already scaled -- workers
    never re-apply ``REPRO_SCALE``.  Failures are captured and returned
    as data; the parent owns retry/record policy.
    """
    import time

    from repro.core import experiment
    from repro.robustness.deadline import point_deadline

    key = ExperimentKey.from_dict(key_dict)
    started = time.monotonic()
    # Live telemetry: a beacon exists only when the parent opened a
    # heartbeat channel (pool initializer installed the queue); it
    # observes commits but never influences the simulation.
    beacon = telemetry.point_beacon(key)
    if beacon is not None:
        telemetry.install_beacon(beacon)
        beacon.start()
    try:
        with obs_spans.span("point.prepare"):
            spec = benchmark(key.workload)
        # Workers self-enforce the wall-clock budget (inherited via
        # REPRO_POINT_TIMEOUT); the parent's grace kill is the backstop
        # for a worker too wedged to reach the cooperative check.
        with obs_spans.span("point.run"), point_deadline():
            result = experiment._simulate(key.organization, spec, key.settings)
    except Exception as error:  # noqa: BLE001 - shipped back, not swallowed
        if beacon is not None:
            beacon.end("error", type(error).__name__)
        return {
            "status": "error",
            "error_type": type(error).__name__,
            "message": experiment._failure_message(error),
            "seconds": time.monotonic() - started,
        }
    finally:
        if beacon is not None:
            telemetry.clear_beacon()
    if beacon is not None:
        beacon.end("ok")
    with obs_spans.span("point.serialize"):
        payload = result_to_dict(result)
    return {
        "status": "ok",
        "result": payload,
        "seconds": time.monotonic() - started,
    }


# ---------------------------------------------------------------------------
# Worker-side pool channel
# ---------------------------------------------------------------------------

#: Set by the pool initializer in each worker: (mark queue, stop event).
_POOL_CHANNEL = None


def _init_pool_worker(
    queue, stop_event, telemetry_on: bool, spans_on: bool = False
) -> None:
    """Initializer for persistent-pool workers.

    Installs the dispatch channel (``point-start`` / ``point-done``
    marks plus the cooperative stop flag).  The heartbeat queue is only
    wired up when the parent actually runs with live telemetry: an
    untelemetered run never builds a beacon, so its workers pay nothing
    per committed instruction -- and the parent never pays for a
    ``multiprocessing.Manager`` at all (marks and heartbeats share this
    one plain queue).  Span recording rides the same queue: when the
    parent runs with spans on, workers get an emit-only recorder whose
    finished spans travel back as ``span`` marks.
    """
    global _POOL_CHANNEL
    _POOL_CHANNEL = (queue, stop_event)
    if telemetry_on:
        telemetry._init_worker(queue)
    if spans_on:
        obs_spans.install_worker(
            lambda data: _channel_send(queue, {"type": "span", "data": data})
        )


def _channel_send(queue, message: dict) -> None:
    """Best-effort mark delivery: marks observe, they never fail work."""
    try:
        queue.put(message)
    except Exception:  # noqa: BLE001
        pass


def _close_chunk_span(chunk_spans, chunk_waits, chunk_id, **attrs) -> None:
    """Close a chunk's parent-side spans (wait first), tolerating repeats."""
    wait_span = chunk_waits.pop(chunk_id, None)
    if wait_span is not None:
        wait_span.close()
    chunk_span = chunk_spans.pop(chunk_id, None)
    if chunk_span is not None:
        if attrs:
            chunk_span.set(**attrs)
        chunk_span.close()


def run_chunk_payload(
    chunk_id: int, key_dicts: list[dict], span_ctx: dict | None = None
) -> dict:
    """Worker entry point: simulate one chunk of design points.

    Streams ``point-start`` / ``point-done`` marks to the parent (wedge
    backstop, per-worker utilization, live progress) and returns the
    authoritative payload list.  A set stop event turns a graceful
    shutdown around between points: the in-flight point finishes, the
    rest of the chunk is abandoned -- the same between-points check the
    serial loop performs.

    ``span_ctx`` -- the coordinator's (trace id, chunk span id) pair --
    is adopted for the chunk's lifetime when spans are on, so worker
    ``point`` spans nest under the right chunk in the sweep trace.
    """
    import os
    import time

    channel = _POOL_CHANNEL
    queue, stop_event = channel if channel is not None else (None, None)
    worker = f"pid:{os.getpid()}"
    entries: list[dict] = []
    with obs_spans.adopt(span_ctx):
        for key_dict in key_dicts:
            if stop_event is not None and stop_event.is_set():
                break
            key = ExperimentKey.from_dict(key_dict)
            if queue is not None:
                _channel_send(
                    queue,
                    {
                        "type": "point-start",
                        "chunk": chunk_id,
                        "digest": key.digest,
                        "label": key.label,
                        "worker": worker,
                        # Epoch time: the coordinator closes this
                        # chunk's queue-wait span at the moment work
                        # began, not at the (laggy) drain.
                        "t": time.time(),
                    },
                )
            started = time.monotonic()
            with obs_spans.span(
                "point", digest=key.digest[:12], label=key.label, chunk=chunk_id
            ) as pspan:
                payload = run_point_payload(key_dict)
                if pspan is not None:
                    pspan.set(ok=payload.get("status") == "ok")
            busy = time.monotonic() - started
            if queue is not None:
                _channel_send(
                    queue,
                    {
                        "type": "point-done",
                        "chunk": chunk_id,
                        "digest": key.digest,
                        "worker": worker,
                        "ok": payload.get("status") == "ok",
                        "busy": busy,
                    },
                )
            entries.append({"digest": key.digest, "payload": payload})
    return {"chunk": chunk_id, "worker": worker, "entries": entries}


class _PoolHandle:
    """One persistent worker pool plus its parent<->worker channel."""

    __slots__ = ("pool", "queue", "stop", "fingerprint", "workers", "broken", "owner_pid")

    def __init__(self, pool, queue, stop, fingerprint, workers, owner_pid):
        self.pool = pool
        self.queue = queue
        self.stop = stop
        self.fingerprint = fingerprint
        self.workers = workers
        self.broken = False
        self.owner_pid = owner_pid


class Engine:
    """Process-wide execution state: memo, store, and parallelism."""

    def __init__(self, jobs: int = 1, store: ResultStore | None = None):
        self.jobs = jobs
        self.store = store
        self.memo: dict[ExperimentKey, SimulationResult] = {}
        #: The active sweep checkpoint, installed by ``ExecutionPlan
        #: .execute`` for the duration of one batch; ``None`` otherwise.
        self.checkpoint = None
        #: The persistent worker pool (created on first parallel batch,
        #: reused across batches until the configuration changes).
        self._pool: _PoolHandle | None = None
        #: Dispatch instrumentation of the most recent parallel batch.
        self.last_dispatch = None
        #: Per-point wall-clock seconds of the most recent batch
        #: (parent-measured for serial points, worker-reported for
        #: parallel ones); feeds the run ledger's point rows.
        self.point_seconds: dict[ExperimentKey, float] = {}

    # ------------------------------------------------------------------
    # Persistent worker pool
    # ------------------------------------------------------------------

    def _pool_fingerprint(self, telemetry_on: bool) -> tuple:
        """What must match for an existing pool to be reusable.

        Workers snapshot the environment (and, under ``fork``, parent
        memory) at pool creation, so every ``REPRO_*`` variable --
        backend, chaos plan, deadlines, scale -- participates: a change
        invalidates the pool rather than running new work against stale
        worker state.
        """
        import os

        env = tuple(
            sorted(
                (name, value)
                for name, value in os.environ.items()
                if name.startswith("REPRO_")
            )
        )
        # Span recording changes the worker initializer's behavior the
        # same way telemetry does, so toggling it invalidates the pool.
        spans_on = obs_spans.active() is not None
        return (self.jobs, telemetry_on, spans_on, env)

    def _acquire_pool(self, telemetry_on: bool, points, profile) -> _PoolHandle:
        """Reuse the persistent pool, or (re)create it when stale."""
        import multiprocessing
        import os
        import time
        from concurrent.futures import ProcessPoolExecutor

        fingerprint = self._pool_fingerprint(telemetry_on)
        handle = self._pool
        if (
            handle is not None
            and not handle.broken
            and handle.fingerprint == fingerprint
        ):
            handle.stop.clear()
            profile.pool_reused = True
            return handle
        self.shutdown_pool()
        start = time.monotonic()
        self._prewarm_worker_state(points, profile)
        queue = multiprocessing.Queue()
        stop = multiprocessing.Event()
        pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_init_pool_worker,
            initargs=(queue, stop, telemetry_on, obs_spans.active() is not None),
        )
        handle = _PoolHandle(
            pool, queue, stop, fingerprint, self.jobs, os.getpid()
        )
        self._pool = handle
        profile.pool_create_seconds = (
            time.monotonic() - start - profile.prewarm_seconds
        )
        return handle

    def _prewarm_worker_state(self, points, profile) -> None:
        """Materialize shared read-only workload artifacts pre-fork.

        With the fast backend under the ``fork`` start method, the
        functional-warm-up reference streams (the bulk of a cold
        point's setup) are generated once in the parent immediately
        before the pool forks, so every worker inherits them
        copy-on-write instead of regenerating them per process.
        """
        import multiprocessing
        import time

        from repro import kernel

        if kernel.selected_name() != "fast":
            return
        if multiprocessing.get_start_method(allow_none=False) != "fork":
            return
        start = time.monotonic()
        try:
            from repro.kernel import tracecache

            identities: dict[tuple, tuple] = {}
            for key, spec in points:
                settings = key.settings
                if settings.functional_warmup > 0:
                    identities.setdefault(
                        (spec, settings.seed, settings.functional_warmup),
                        (spec, settings),
                    )
            # Stay under the LRU capacity so prewarming never evicts
            # what it just generated.
            for spec, settings in list(identities.values())[
                : tracecache.CACHE_ENTRIES
            ]:
                tracecache.artifacts_for(
                    spec, settings.seed, settings.functional_warmup
                ).warm_references()
        except Exception:  # noqa: BLE001 - prewarm is an optimization only
            pass
        profile.prewarm_seconds = time.monotonic() - start

    def shutdown_pool(self, wait: bool = True) -> None:
        """Tear down the persistent worker pool, if this process owns one."""
        import os

        handle = self._pool
        if handle is None:
            return
        self._pool = None
        if handle.owner_pid != os.getpid():
            return  # a forked child inherited the reference; not ours
        try:
            handle.stop.set()
            handle.pool.shutdown(wait=wait, cancel_futures=True)
        except Exception:  # noqa: BLE001 - teardown must never raise
            pass
        try:
            handle.queue.close()
            handle.queue.cancel_join_thread()
        except Exception:  # noqa: BLE001
            pass

    def __del__(self):  # pragma: no cover - interpreter-dependent timing
        try:
            self.shutdown_pool(wait=False)
        except Exception:  # noqa: BLE001
            pass

    def _mark(self, key: ExperimentKey, outcome: str) -> None:
        """Record one resolved point in the active checkpoint, if any."""
        checkpoint = self.checkpoint
        if checkpoint is not None:
            with obs_spans.span("checkpoint.mark", outcome=outcome):
                checkpoint.mark(key, outcome)

    # ------------------------------------------------------------------
    # Cache layers
    # ------------------------------------------------------------------

    def lookup(
        self, key: ExperimentKey, spec: "WorkloadSpec"
    ) -> SimulationResult | None:
        """Memo first, then the disk store (promoting hits to the memo)."""
        cached = self.memo.get(key)
        if cached is not None:
            obs_trace.emit(ENGINE_CACHE_HIT, 0, key=key.label, layer="memo")
            return cached
        if self.store is not None and _is_catalog_spec(spec):
            stored = self.store.load(key)
            if stored is not None:
                self.memo[key] = stored
                obs_trace.emit(ENGINE_CACHE_HIT, 0, key=key.label, layer="store")
                return stored
        return None

    def remember(
        self, key: ExperimentKey, spec: "WorkloadSpec", result: SimulationResult
    ) -> None:
        self.memo[key] = result
        if self.store is not None and _is_catalog_spec(spec):
            with obs_spans.span("store.write", digest=key.digest[:12]):
                self.store.save(key, result)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run_point(
        self,
        key: ExperimentKey,
        spec: "WorkloadSpec",
        outcomes: "dict[ExperimentKey, str] | None" = None,
    ) -> SimulationResult:
        """One design point, serial, with the standard resilience policy.

        Matches the historical ``run_experiment`` semantics: outside a
        :func:`~repro.robustness.runner.resilient_sweeps` context errors
        propagate; inside one, a failure is retried at reduced budget
        and recorded.  Successful full-budget results are memoized (and
        persisted); recovered/gap results are not, so the next run gets
        a fresh attempt.

        ``outcomes``, when given, receives how the point resolved
        (``simulated`` / ``recovered`` / ``gap``) for the run ledger.
        """
        import time

        started = time.monotonic()
        try:
            with obs_spans.span(
                "point", digest=key.digest[:12], label=key.label, where="parent"
            ):
                return self._run_point_inner(key, spec, outcomes)
        finally:
            self.point_seconds[key] = time.monotonic() - started

    def _run_point_inner(
        self,
        key: ExperimentKey,
        spec: "WorkloadSpec",
        outcomes: "dict[ExperimentKey, str] | None" = None,
    ) -> SimulationResult:
        from repro.core import experiment
        from repro.robustness.deadline import point_deadline
        from repro.robustness.runner import current_failure_log

        log = current_failure_log()
        hub = telemetry.active_hub()
        point = telemetry._point_id(key)
        if hub is not None:
            hub.point_started(point, key.label)
        beacon = (
            telemetry.point_beacon(key, send=hub.handle)
            if hub is not None
            else None
        )
        if beacon is not None:
            telemetry.install_beacon(beacon)
            beacon.start()
        try:
            with point_deadline():
                result = experiment._simulate(
                    key.organization, spec, key.settings
                )
        except Exception as error:  # noqa: BLE001 - isolation is the point
            if beacon is not None:
                beacon.end("error", type(error).__name__)
            if log is None:
                raise
            return self._retry(
                key,
                spec,
                log,
                type(error).__name__,
                experiment._failure_message(error),
                outcomes,
            )
        finally:
            if beacon is not None:
                telemetry.clear_beacon()
        if beacon is not None:
            beacon.end("ok")
        self.remember(key, spec, result)
        self._mark(key, "simulated")
        if outcomes is not None:
            outcomes[key] = "simulated"
        if hub is not None:
            hub.point_finished(point, key.label, "simulated")
        return result

    def _retry(
        self,
        key: ExperimentKey,
        spec: "WorkloadSpec",
        log,
        error_type: str,
        message: str,
        outcomes: "dict[ExperimentKey, str] | None",
    ) -> SimulationResult:
        """In-parent resilience tail, with telemetry around the retry."""
        from repro.core import experiment

        hub = telemetry.active_hub()
        point = telemetry._point_id(key)
        if hub is not None:
            hub.point_retrying(point, key.label, 2)
        beacon = (
            telemetry.point_beacon(key, send=hub.handle, attempt=2)
            if hub is not None
            else None
        )
        if beacon is not None:
            telemetry.install_beacon(beacon)
            beacon.start()
        try:
            result = experiment._retry_reduced(
                key.organization, spec, key.settings, log, error_type, message
            )
        finally:
            if beacon is not None:
                telemetry.clear_beacon()
        # ``_retry_reduced`` always records exactly one outcome.
        outcome = log.records[-1].resolution if log.records else "gap"
        if beacon is not None:
            beacon.end("ok" if outcome == "recovered" else "error", error_type)
        self._mark(key, outcome)
        if outcomes is not None:
            outcomes[key] = outcome
        if hub is not None:
            hub.point_finished(point, key.label, outcome)
        return result

    def run_batch(
        self,
        points: "dict[ExperimentKey, WorkloadSpec]",
        outcomes: "dict[ExperimentKey, str] | None" = None,
        results: "dict[ExperimentKey, SimulationResult] | None" = None,
    ) -> dict[ExperimentKey, SimulationResult]:
        """Resolve every planned point; simulate only what is missing.

        ``outcomes`` (for the run ledger) receives per-key resolution:
        ``memo`` / ``store`` for cache layers, ``simulated`` /
        ``recovered`` / ``gap`` / ``timeout`` for fresh work.

        ``results``, when given, is filled *in place* as points resolve,
        so a caller catching :class:`~repro.robustness.shutdown.
        SweepInterrupted` still holds everything that did finish.  A
        shutdown request stops the batch between design points.
        """
        from repro.robustness.runner import current_failure_log
        from repro.robustness.shutdown import SweepInterrupted, shutdown_requested

        hub = telemetry.active_hub()
        if hub is not None:
            hub.batch_started(len(points))
            hub.attach_failure_log(current_failure_log())
        if results is None:
            results = {}
        pending: list[tuple[ExperimentKey, WorkloadSpec]] = []
        with obs_spans.span("plan.lookup", planned=len(points)) as lspan:
            for key, spec in points.items():
                in_memo = key in self.memo
                cached = self.lookup(key, spec)
                if cached is not None:
                    results[key] = cached
                    layer = "memo" if in_memo else "store"
                    self._mark(key, layer)
                    if outcomes is not None:
                        outcomes[key] = layer
                    if hub is not None:
                        hub.point_cached(telemetry._point_id(key), key.label, layer)
                else:
                    pending.append((key, spec))
                    if hub is not None:
                        hub.point_queued(telemetry._point_id(key), key.label)
            if lspan is not None:
                lspan.set(cached=len(results), pending=len(pending))
        obs_trace.emit(
            ENGINE_EXECUTE,
            0,
            planned=len(points),
            cached=len(results),
            simulated=len(pending),
            jobs=self.jobs,
        )
        if not pending:
            return results
        if self.jobs > 1:
            remote = [(k, s) for k, s in pending if _is_catalog_spec(s)]
            local = [(k, s) for k, s in pending if not _is_catalog_spec(s)]
            if len(remote) > 1:
                try:
                    self._run_parallel(remote, outcomes, results)
                except SweepInterrupted:
                    raise SweepInterrupted(
                        len(results), len(points) - len(results)
                    ) from None
            else:
                local = pending
        else:
            local = pending
        for key, spec in local:
            if shutdown_requested():
                raise SweepInterrupted(len(results), len(points) - len(results))
            results[key] = self.run_point(key, spec, outcomes)
        return results

    def _run_parallel(
        self,
        points: "list[tuple[ExperimentKey, WorkloadSpec]]",
        outcomes: "dict[ExperimentKey, str] | None" = None,
        results: "dict[ExperimentKey, SimulationResult] | None" = None,
    ) -> dict[ExperimentKey, SimulationResult]:
        """Fan design points out over the persistent worker pool.

        The batch is packed into cost-sorted chunks
        (:mod:`repro.engine.dispatch`) and self-scheduled: every chunk
        is submitted up front, idle workers pull the next one from the
        shared queue, and chunk futures are absorbed *as they
        complete*, in any order.  Determinism is restored at resolve
        time: successes land in keyed caches (order-free by
        construction), failures are buffered and replayed through the
        serial retry policy in plan order, so failure-log records and
        gap sentinels match a serial run exactly.

        Three guards run in the wait loop:

        * with a point timeout configured, a point silent past budget
          *plus grace* (tracked per point via the workers' mark stream)
          means a wedged worker: the pool is killed, the wedged point
          becomes a ``timeout`` gap, and every other unfinished point
          falls back to in-parent execution under its own deadline;
        * a broken pool (worker killed by the OS) likewise degrades the
          chunk's unabsorbed points to in-parent execution instead of
          aborting the sweep;
        * a shutdown request cancels not-yet-started chunks, sets the
          cooperative stop event so running chunks return after their
          in-flight point, then raises
          :class:`~repro.robustness.shutdown.SweepInterrupted`.
        """
        import time
        from concurrent.futures import FIRST_COMPLETED, CancelledError, wait

        from repro.engine.dispatch import CostModel, DispatchProfile, plan_chunks
        from repro.observability.events import ENGINE_DISPATCH
        from repro.robustness.deadline import configured_timeout, grace_seconds
        from repro.robustness.shutdown import SweepInterrupted, shutdown_requested

        if results is None:
            results = {}
        hub = telemetry.active_hub()
        # A recorder without an open trace means no sweep root span
        # exists (a bare run_batch outside execute()); skip the
        # per-chunk bookkeeping entirely in that case, same as off.
        recorder = obs_spans.active()
        if recorder is not None and recorder.trace_id is None:
            recorder = None
        batch_start = time.monotonic()
        profile = DispatchProfile(len(points), self.jobs)
        self.last_dispatch = profile
        handle = self._acquire_pool(hub is not None, points, profile)
        with obs_spans.span("dispatch.price", points=len(points)):
            estimate = CostModel.for_engine(self).estimate
        with obs_spans.span("dispatch.pack", workers=handle.workers) as pspan:
            chunks = plan_chunks(points, estimate, handle.workers)
            if pspan is not None:
                pspan.set(chunks=len(chunks))
        profile.chunks = len(chunks)
        by_digest = {key.digest: (key, spec) for key, spec in points}

        #: Parent-side spans covering each chunk's whole lifetime and
        #: its queue wait (submit -> first point-start), closed out of
        #: order as workers report in.
        chunk_spans: dict[int, object] = {}
        chunk_waits: dict[int, object] = {}
        span_state = (recorder, chunk_waits, profile) if recorder is not None else None

        submit_start = time.monotonic()
        futures: dict = {}
        try:
            for chunk_id, chunk in enumerate(chunks):
                span_ctx = None
                if recorder is not None:
                    cspan = recorder.open(
                        "chunk", chunk=chunk_id, points=len(chunk)
                    )
                    chunk_spans[chunk_id] = cspan
                    chunk_waits[chunk_id] = recorder.open(
                        "chunk.wait", parent=cspan.span_id, chunk=chunk_id
                    )
                    span_ctx = {
                        "trace": recorder.trace_id,
                        "parent": cspan.span_id,
                    }
                future = handle.pool.submit(
                    run_chunk_payload,
                    chunk_id,
                    [key.to_dict() for key, _ in chunk],
                    span_ctx,
                )
                futures[future] = chunk_id
        except Exception:  # noqa: BLE001 - a dead pool degrades to serial
            handle.broken = True
        profile.submit_seconds = time.monotonic() - submit_start

        timeout = configured_timeout()
        budget = None if timeout is None else timeout + grace_seconds()
        absorbed: set[str] = set()
        errors: dict[str, dict] = {}
        #: chunk id -> (digest, label, started_at) of its in-flight point.
        current: dict[int, tuple[str, str, float]] = {}
        chunks_started: set[int] = set()
        running_since: dict[int, float] = {}
        interrupted = False
        drain_start = time.monotonic()
        pending = set(futures)
        while pending:
            if not interrupted and shutdown_requested():
                interrupted = True
                handle.stop.set()
                for future in pending:
                    future.cancel()
            done, pending = wait(
                pending, timeout=0.25, return_when=FIRST_COMPLETED
            )
            self._drain_dispatch_queue(
                handle, hub, profile, current, chunks_started, span_state
            )
            for future in done:
                chunk_id = futures[future]
                try:
                    outcome = future.result()
                except CancelledError:
                    _close_chunk_span(
                        chunk_spans, chunk_waits, chunk_id, cancelled=True
                    )
                    continue  # shutdown canceled it before it started
                except Exception:  # noqa: BLE001 - BrokenProcessPool et al.
                    # Worker death: the chunk's unabsorbed points fall
                    # back to the in-parent tail below.
                    handle.broken = True
                    current.pop(chunk_id, None)
                    _close_chunk_span(
                        chunk_spans, chunk_waits, chunk_id, error="BrokenPool"
                    )
                    continue
                current.pop(chunk_id, None)
                _close_chunk_span(
                    chunk_spans,
                    chunk_waits,
                    chunk_id,
                    worker=outcome.get("worker"),
                    entries=len(outcome["entries"]),
                )
                with obs_spans.span(
                    "absorb", chunk=chunk_id, entries=len(outcome["entries"])
                ):
                    for entry in outcome["entries"]:
                        digest = entry["digest"]
                        if digest in absorbed:
                            continue
                        absorbed.add(digest)
                        key, spec = by_digest[digest]
                        payload = entry["payload"]
                        if payload.get("status") == "ok":
                            results[key] = self._absorb(
                                key, spec, payload, outcomes
                            )
                        else:
                            errors[digest] = payload
            if budget is not None and pending and not interrupted:
                wedged = self._find_wedged_point(
                    budget, current, absorbed, pending, futures,
                    chunks, running_since,
                )
                if wedged is not None:
                    # The worker blew through budget + grace without
                    # even reporting its own deadline: it is wedged.
                    # Kill the pool; this point is a timeout, the rest
                    # fall back.
                    for process in list(handle.pool._processes.values()):
                        process.kill()
                    handle.broken = True
                    absorbed.add(wedged)
                    errors[wedged] = {
                        "status": "error",
                        "error_type": "DeadlineExceededError",
                        "message": (
                            f"worker exceeded the {timeout:g}s point "
                            f"budget plus {budget - timeout:g}s grace "
                            "without responding; killed by the parent"
                        ),
                    }
                    profile.timeout_points += 1
        profile.drain_seconds = time.monotonic() - drain_start

        if recorder is not None:
            # Worker span marks can trail the chunk futures (the queue
            # is asynchronous); give stragglers a bounded settle window
            # -- two consecutive quiet drains or ~1s, whichever first.
            quiet = 0
            settle_deadline = time.monotonic() + 1.0
            while quiet < 2 and time.monotonic() < settle_deadline:
                before = recorder.recorded
                self._drain_dispatch_queue(
                    handle, hub, profile, current, chunks_started, span_state
                )
                if recorder.recorded == before:
                    quiet += 1
                    time.sleep(0.02)
                else:
                    quiet = 0
            # Close whatever the loop never saw finish (broken pool,
            # interrupt) so the trace has no dangling open spans.
            for chunk_id in list(chunk_spans):
                _close_chunk_span(chunk_spans, chunk_waits, chunk_id)

        # Deterministic re-sequencing: the serial-policy tail walks the
        # batch in plan order, replaying worker failures through the
        # parent retry path and running pool-casualty points in-parent,
        # so the failure log reads exactly as a serial run's would.
        retry_start = time.monotonic()
        with obs_spans.span(
            "resequence", errors=len(errors), absorbed=len(absorbed)
        ):
            for key, spec in points:
                digest = key.digest
                payload = errors.get(digest)
                if payload is not None:
                    results[key] = self._absorb(key, spec, payload, outcomes)
                elif digest not in absorbed and not interrupted:
                    if shutdown_requested():
                        interrupted = True
                        continue
                    profile.fallback_points += 1
                    results[key] = self.run_point(key, spec, outcomes)
        profile.retry_seconds = time.monotonic() - retry_start
        profile.interrupted = interrupted
        profile.wall_seconds = time.monotonic() - batch_start
        if hub is not None:
            hub.record_dispatch(profile.as_dict())
        obs_trace.emit(
            ENGINE_DISPATCH,
            0,
            points=len(points),
            chunks=profile.chunks,
            workers=handle.workers,
            reused=profile.pool_reused,
            steals=profile.total_steals,
            fallback=profile.fallback_points,
            utilization=round(profile.utilization(), 3),
        )
        if interrupted:
            raise SweepInterrupted(len(results), len(points) - len(results))
        return results

    def _drain_dispatch_queue(
        self, handle: _PoolHandle, hub, profile, current, chunks_started,
        span_state=None,
    ) -> None:
        """Absorb queued worker marks (and heartbeats) without blocking.

        ``span_state`` -- ``(recorder, chunk_waits, profile)`` when the
        sweep span recorder is live -- lets the drain fold worker span
        marks into the trace, close a chunk's queue-wait span on its
        first ``point-start``, and stamp steal instants.
        """
        import queue as queue_mod
        import time

        recorder = chunk_waits = None
        if span_state is not None:
            recorder, chunk_waits, _ = span_state
        while True:
            try:
                message = handle.queue.get_nowait()
            except (queue_mod.Empty, EOFError, OSError):
                return
            except Exception:  # noqa: BLE001 - a torn queue ends the drain
                return
            if not isinstance(message, dict):
                continue
            kind = message.get("type")
            if kind == "span":
                if recorder is not None:
                    recorder.record(message.get("data"))
                continue
            if kind == "point-start":
                chunk_id = message.get("chunk")
                worker = message.get("worker", "?")
                digest = message.get("digest", "")
                current[chunk_id] = (
                    digest,
                    message.get("label", ""),
                    time.monotonic(),
                )
                if chunk_id not in chunks_started:
                    chunks_started.add(chunk_id)
                    profile.chunk_started(worker)
                    if recorder is not None:
                        wait_span = chunk_waits.pop(chunk_id, None)
                        if wait_span is not None:
                            wait_span.set(worker=worker)
                            started_at = message.get("t")
                            wait_span.close(
                                end=float(started_at) if started_at else None
                            )
                        # A worker picking up its second chunk is a
                        # steal in this self-scheduling scheme.
                        if profile.worker_stats(worker).chunks > 1:
                            recorder.instant(
                                "chunk.steal", chunk=chunk_id, worker=worker
                            )
                if hub is not None:
                    hub.point_started(digest[:12], message.get("label", ""))
            elif kind == "point-done":
                chunk_id = message.get("chunk")
                entry = current.get(chunk_id)
                if entry is not None and entry[0] == message.get("digest"):
                    current.pop(chunk_id, None)
                profile.point_done(
                    message.get("worker", "?"),
                    float(message.get("busy") or 0.0),
                )
            elif hub is not None:
                try:
                    hub.handle(message)
                except Exception:  # noqa: BLE001 - observer only
                    pass

    @staticmethod
    def _find_wedged_point(
        budget, current, absorbed, pending, futures, chunks, running_since
    ) -> str | None:
        """The digest of a point silent past budget + grace, if any.

        Normally the mark stream pins the in-flight point of every
        running chunk, so the budget applies per point.  If the stream
        went silent (queue torn down with the pool still nominally up),
        degrade to whole-chunk budgets keyed off when the chunk's
        future was first observed running.
        """
        import time

        now = time.monotonic()
        for digest, _label, since in current.values():
            if digest not in absorbed and now - since > budget:
                return digest
        for future in pending:
            chunk_id = futures[future]
            if chunk_id in current:
                continue
            if future.running() and chunk_id not in running_since:
                running_since[chunk_id] = now
            since = running_since.get(chunk_id)
            if since is None:
                continue
            if now - since > budget * max(1, len(chunks[chunk_id])):
                for key, _spec in chunks[chunk_id]:
                    if key.digest not in absorbed:
                        return key.digest
        return None

    def _absorb(
        self,
        key: ExperimentKey,
        spec: "WorkloadSpec",
        payload: dict,
        outcomes: "dict[ExperimentKey, str] | None" = None,
    ) -> SimulationResult:
        """Fold one worker response into the cache layers / failure log."""
        from repro.robustness.runner import current_failure_log

        hub = telemetry.active_hub()
        seconds = payload.get("seconds")
        if seconds is not None:
            self.point_seconds[key] = float(seconds)
        if payload.get("status") == "ok":
            result = result_from_dict(payload["result"])
            self.remember(key, spec, result)
            self._mark(key, "simulated")
            if outcomes is not None:
                outcomes[key] = "simulated"
            if hub is not None:
                hub.point_finished(
                    telemetry._point_id(key), key.label, "simulated"
                )
            return result
        error_type = payload.get("error_type", "UnknownError")
        message = payload.get("message", "worker returned no detail")
        log = current_failure_log()
        if log is None:
            raise WorkerFailureError(key, error_type, message)
        return self._retry(key, spec, log, error_type, message, outcomes)


# ---------------------------------------------------------------------------
# Process-wide engine configuration
# ---------------------------------------------------------------------------

_ENGINE: Engine | None = None

#: Sentinel distinguishing "leave unchanged" from "set to None".
_UNSET = object()


def get_engine() -> Engine:
    """The process-wide engine (serial, no disk store, until configured)."""
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = Engine()
    return _ENGINE


def configure_engine(jobs=_UNSET, store=_UNSET) -> tuple[int, ResultStore | None]:
    """Set engine parallelism and/or disk store; returns prior values.

    The return value lets a caller (the CLI) restore the previous
    configuration afterward, keeping library defaults untouched::

        previous = configure_engine(jobs=4, store=ResultStore())
        try: ...
        finally: configure_engine(*previous)
    """
    engine = get_engine()
    previous = (engine.jobs, engine.store)
    if jobs is not _UNSET:
        if not isinstance(jobs, int) or jobs < 1:
            raise ValueError(f"jobs must be a positive integer: {jobs!r}")
        engine.jobs = jobs
    if store is not _UNSET:
        if store is not None and not isinstance(store, ResultStore):
            raise TypeError(f"store must be a ResultStore or None: {store!r}")
        engine.store = store
    return previous


# ---------------------------------------------------------------------------
# The plan -> execute -> resolve API used by figures and sweeps
# ---------------------------------------------------------------------------


class ExecutionPlan:
    """Declare design points up front, execute them as one batch.

    Usage::

        plan = ExecutionPlan()
        keys = {p: plan.add(org_for(p), "gcc", settings) for p in points}
        plan.execute()
        ipcs = {p: plan.ipc(keys[p]) for p in points}

    ``add`` is idempotent per key, so a figure may plan overlapping
    grids freely; shared points are simulated once.
    """

    def __init__(self, engine: Engine | None = None):
        self._engine = engine
        self._points: dict[ExperimentKey, WorkloadSpec] = {}
        self._results: dict[ExperimentKey, SimulationResult] = {}

    @property
    def engine(self) -> Engine:
        return self._engine if self._engine is not None else get_engine()

    def add(
        self,
        organization,
        workload,
        settings: "ExperimentSettings | None" = None,
    ) -> ExperimentKey:
        """Register one design point; returns its canonical key."""
        from repro.core.experiment import ExperimentSettings
        from repro.workloads.generator import WorkloadSpec

        settings = (settings or ExperimentSettings()).scaled()
        spec = workload if isinstance(workload, WorkloadSpec) else benchmark(workload)
        key = ExperimentKey(organization, spec.name, settings)
        if key not in self._points:
            obs_trace.emit(ENGINE_PLAN, 0, key=key.label)
        self._points.setdefault(key, spec)
        return key

    def add_all(
        self, points: Iterable[tuple], settings=None
    ) -> list[ExperimentKey]:
        """Plan many ``(organization, workload)`` pairs at once."""
        return [self.add(org, workload, settings) for org, workload in points]

    def add_key(self, key: ExperimentKey) -> ExperimentKey:
        """Plan a point from an existing key (checkpoint resume path).

        The key's settings are already scaled -- going through
        :meth:`add` would apply ``REPRO_SCALE`` a second time and plan a
        *different* design point, so this bypasses it.  The workload
        must come from the catalog (checkpoints only cover such plans).
        """
        spec = benchmark(key.workload)
        if key not in self._points:
            obs_trace.emit(ENGINE_PLAN, 0, key=key.label)
        self._points.setdefault(key, spec)
        return key

    def execute(self) -> dict[ExperimentKey, SimulationResult]:
        """Resolve every planned point (missing ones are simulated).

        When the engine has a persistent store, every execution also
        appends one record -- plan digest, per-point outcomes, headline
        summary, wall clock -- to the store's run ledger, and keeps a
        crash-safe checkpoint alongside the store while the batch runs:
        each resolved point appends one mark, a clean completion deletes
        the file, and an interrupt (or a run that ends with gaps) keeps
        it so ``--resume`` / ``repro runs resume`` know what remains.
        A graceful-shutdown request surfaces as
        :class:`~repro.robustness.shutdown.SweepInterrupted` *after*
        the partial batch has been recorded in ledger and checkpoint.
        """
        import time

        from repro.engine.checkpoint import SweepCheckpoint
        from repro.robustness.shutdown import SweepInterrupted

        engine = self.engine
        points = dict(self._points)
        outcomes: dict[ExperimentKey, str] = {}
        results: dict[ExperimentKey, SimulationResult] = {}
        checkpoint = None
        if (
            engine.store is not None
            and points
            and all(_is_catalog_spec(spec) for spec in points.values())
        ):
            checkpoint = SweepCheckpoint.for_plan(engine.store.root, points)
            previously = checkpoint.begin(points)
            if previously:
                obs_trace.emit(
                    ENGINE_RESUME,
                    0,
                    plan_digest=checkpoint.digest[:12],
                    skipped=previously,
                    remaining=len(points) - previously,
                )
                hub = telemetry.active_hub()
                if hub is not None:
                    hub.sweep_resumed(previously)
        start = time.monotonic()
        engine.checkpoint = checkpoint
        engine.point_seconds = {}
        # The sweep span recorder (``--spans-out`` / REPRO_SPANS): every
        # store-backed batch becomes one trace rooted at a ``sweep``
        # span whose id derives from the plan digest.
        recorder = obs_spans.active()
        trace_id = None
        if recorder is not None and points:
            from repro.engine.ledger import plan_digest

            trace_id = obs_spans.next_trace_id(plan_digest(points))
        try:
            if trace_id is not None:
                try:
                    with recorder.trace(
                        trace_id, "sweep", points=len(points), jobs=engine.jobs
                    ):
                        engine.run_batch(points, outcomes, results)
                finally:
                    hub = telemetry.active_hub()
                    if hub is not None:
                        hub.record_spans(
                            recorder.summary(trace_id=trace_id)
                        )
            else:
                engine.run_batch(points, outcomes, results)
        except SweepInterrupted as stop:
            wall = time.monotonic() - start
            self._results.update(results)
            if engine.store is not None and results:
                self._record_run(
                    engine,
                    results,
                    results,
                    outcomes,
                    wall,
                    interrupted=True,
                    span_trace=trace_id,
                )
            if checkpoint is not None:
                stop.checkpoint_path = str(checkpoint.path)
            raise
        finally:
            engine.checkpoint = None
        wall = time.monotonic() - start
        self._results.update(results)
        if engine.store is not None and points:
            self._record_run(
                engine, points, results, outcomes, wall, span_trace=trace_id
            )
        if checkpoint is not None:
            clean = all(
                outcome not in ("gap", "timeout")
                for outcome in outcomes.values()
            )
            if clean:
                checkpoint.remove()
        return dict(self._results)

    def _record_run(
        self,
        engine: Engine,
        points: "dict[ExperimentKey, object]",
        results: dict[ExperimentKey, SimulationResult],
        outcomes: dict[ExperimentKey, str],
        wall: float,
        interrupted: bool = False,
        span_trace: str | None = None,
    ) -> None:
        """Append this execution to the run ledger (never fails the run)."""
        from repro.engine.ledger import build_record
        from repro.engine.store import SCHEMA_VERSION

        recorder = obs_spans.active()
        spans_info = None
        if recorder is not None and span_trace is not None:
            spans_info = recorder.run_info(trace_id=span_trace)
        record = build_record(
            {key: results[key] for key in points},
            outcomes,
            wall_seconds=wall,
            jobs=engine.jobs,
            store_schema=SCHEMA_VERSION,
            interrupted=interrupted,
            point_seconds=engine.point_seconds,
            spans=spans_info,
        )
        # The append lands after the sweep root closed, so it rides the
        # trace as a parentless sibling -- the analyzer ignores it, the
        # raw stream still shows what the bookkeeping cost.
        span_ctx = (
            {"trace": span_trace, "parent": None}
            if recorder is not None and span_trace is not None
            else None
        )
        with obs_spans.adopt(span_ctx):
            with obs_spans.span("ledger.append", points=len(points)):
                run_id = engine.store.ledger().append(record)
        if recorder is not None:
            recorder.flush()
        if run_id is not None:
            obs_trace.emit(
                ENGINE_RUN_RECORD,
                0,
                run_id=run_id,
                plan_digest=record["plan_digest"][:12],
                points=len(points),
            )

    def resolve(self, key: ExperimentKey) -> SimulationResult:
        """The result for a planned key (executing on demand if needed)."""
        cached = self._results.get(key)
        if cached is not None:
            return cached
        spec = self._points.get(key)
        if spec is None:
            raise KeyError(f"key was never planned: {key.label}")
        result = self.engine.lookup(key, spec)
        if result is None:
            result = self.engine.run_point(key, spec)
        self._results[key] = result
        return result

    def ipc(self, key: ExperimentKey) -> float:
        """Shorthand for ``resolve(key).ipc`` (NaN for gap sentinels)."""
        return self.resolve(key).ipc

    def __len__(self) -> int:
        return len(self._points)
