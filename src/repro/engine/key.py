"""Canonical identity of one design point: the :class:`ExperimentKey`.

A key pins everything that determines a simulation's outcome -- the
cache organization, the benchmark name, and the (already REPRO_SCALE-
scaled) experiment settings.  It is hashable (the in-memory memo),
JSON-serializable (parallel workers), and content-addressable: the
digest is a SHA-256 over the canonical JSON form, so it is stable
across processes and interpreter invocations -- no dependence on
``PYTHONHASHSEED`` or dict iteration order.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import cached_property

from repro.core.experiment import ExperimentSettings
from repro.core.organizations import CacheOrganization
from repro.engine.serialize import (
    organization_from_dict,
    organization_to_dict,
    settings_from_dict,
    settings_to_dict,
)


@dataclass(frozen=True)
class ExperimentKey:
    """Identity of one (organization, workload, scaled settings) point."""

    organization: CacheOrganization
    workload: str  #: benchmark name (catalog key for dispatchable points)
    settings: ExperimentSettings  #: REPRO_SCALE already applied

    def to_dict(self) -> dict:
        return {
            "organization": organization_to_dict(self.organization),
            "workload": self.workload,
            "settings": settings_to_dict(self.settings),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentKey":
        return cls(
            organization=organization_from_dict(data["organization"]),
            workload=data["workload"],
            settings=settings_from_dict(data["settings"]),
        )

    def canonical_json(self) -> str:
        """Deterministic JSON form: sorted keys, minimal separators."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )

    @cached_property
    def digest(self) -> str:
        """Content address: SHA-256 hex of the canonical JSON form."""
        return hashlib.sha256(self.canonical_json().encode("ascii")).hexdigest()

    @property
    def label(self) -> str:
        """Human-readable point name, e.g. ``1~ duplicate 32K +LB / gcc``."""
        return f"{self.organization.label} / {self.workload}"
