"""Persistent on-disk result store: ``.repro-cache/`` JSON files.

Results are content-addressed by the :class:`ExperimentKey` digest and
stamped with a schema version, so a second ``python -m repro all`` run
resolves every already-simulated design point from disk instead of
re-simulating it.  Layout::

    <root>/v<SCHEMA>/<digest[:2]>/<digest>.json

Each entry records the schema stamp, the digest, the *full* key dict
(collision/corruption guard: a load verifies the stored key matches the
requested one before trusting the result), and the serialized
:class:`~repro.cpu.result.SimulationResult`.

Robustness rules: unreadable/garbled/mis-versioned entries are treated
as misses, never errors; writes are atomic (tempfile + rename) so
concurrent runs sharing a cache directory cannot observe torn files;
``failed`` sentinel results are never persisted -- a gap should be
retried by the next run, not remembered forever.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.cpu.result import SimulationResult
from repro.engine.key import ExperimentKey
from repro.engine.serialize import SerializationError, result_from_dict, result_to_dict

#: Bump whenever key or result serialization changes shape (or whenever
#: a simulator change invalidates previously stored numbers).
#: v3: ``metrics`` may carry ``attribution.*`` (per-load critical-path
#: components, latency histogram buckets, float percentiles) and
#: ``trace.dropped_events``; v2 entries predate those semantics.
#: v4: results gain a ``counters`` field -- the interval-sampled
#: counter series (or None when sampling was off); v3 entries would
#: silently read back as counter-less, so they are retired instead.
SCHEMA_VERSION = 4

#: Environment override for the store location used by the CLI.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default store directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_root() -> Path:
    """Store root from ``REPRO_CACHE_DIR``, else ``./.repro-cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


class ResultStore:
    """Content-addressed JSON store for simulation results."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_root()
        #: Load outcomes this process, for the live /metrics endpoint.
        self.hits = 0
        self.misses = 0

    @property
    def version_dir(self) -> Path:
        return self.root / f"v{SCHEMA_VERSION}"

    def path_for(self, key: ExperimentKey) -> Path:
        digest = key.digest
        return self.version_dir / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    # Load / save
    # ------------------------------------------------------------------

    def load(self, key: ExperimentKey) -> SimulationResult | None:
        """The stored result for ``key``, or None on any kind of miss."""
        result = self._load(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def _load(self, key: ExperimentKey) -> SimulationResult | None:
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != SCHEMA_VERSION:
            return None
        if entry.get("key") != key.to_dict():
            return None  # digest collision or stale/foreign entry
        try:
            return result_from_dict(entry["result"])
        except (KeyError, TypeError, SerializationError):
            return None

    def save(self, key: ExperimentKey, result: SimulationResult) -> bool:
        """Persist ``result`` under ``key``; returns False when skipped.

        Failed sentinel results are skipped on purpose, and any I/O
        problem turns into a skip rather than an error -- the store is
        an accelerator, never a correctness dependency.
        """
        if result.failed:
            return False
        path = self.path_for(key)
        entry = {
            "schema": SCHEMA_VERSION,
            "digest": key.digest,
            "key": key.to_dict(),
            "result": result_to_dict(result),
        }
        try:
            payload = json.dumps(entry, allow_nan=False, separators=(",", ":"))
        except ValueError:
            return False  # non-finite number crept in; refuse to persist
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        return True

    # ------------------------------------------------------------------
    # Run ledger
    # ------------------------------------------------------------------

    def ledger(self):
        """The run ledger living alongside the store entries.

        Kept at the store root (``runs.jsonl``), outside the ``v*/??/``
        shard layout, so ``info()`` entry counts and ``clear()`` never
        confuse run history with result entries.
        """
        from repro.engine.ledger import LEDGER_NAME, RunLedger

        return RunLedger(self.root / LEDGER_NAME)

    # ------------------------------------------------------------------
    # Maintenance: python -m repro cache {info,clear,verify}
    # ------------------------------------------------------------------

    def _entry_paths(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("v*/??/*.json"))

    @property
    def quarantine_dir(self) -> Path:
        """Where ``verify`` moves damaged entries (outside ``v*/??/``,
        so entry counts and loads never see quarantined files)."""
        return self.root / "quarantine"

    def _entry_problem(self, path: Path) -> str | None:
        """What is wrong with one on-disk entry, or ``None`` if healthy.

        The checks mirror what ``_load`` silently treats as a miss, so
        ``verify`` surfaces exactly the entries loads are quietly paying
        a re-simulation for.
        """
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return "unreadable (truncated or garbled JSON)"
        if not isinstance(entry, dict):
            return "not a JSON object"
        try:
            expected_schema = int(path.parent.parent.name[1:])
        except (ValueError, IndexError):
            expected_schema = None
        if entry.get("schema") != expected_schema:
            return (
                f"schema stamp {entry.get('schema')!r} does not match "
                f"its v{expected_schema} directory"
            )
        if entry.get("digest") != path.stem:
            return "digest does not match the file name"
        if "key" not in entry or "result" not in entry:
            return "missing key/result fields"
        return None

    def _quarantine(self, path: Path) -> Path | None:
        """Move a damaged entry aside; returns its new home, or None."""
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            target = self.quarantine_dir / path.name
            suffix = 0
            while target.exists():
                suffix += 1
                target = self.quarantine_dir / f"{path.name}.{suffix}"
            os.replace(path, target)
        except OSError:
            return None
        return target

    def verify(self, heal: bool = True) -> dict:
        """Scan every entry and the ledger for damage; optionally heal.

        Damaged entries (torn writes, garbage bytes, wrong schema stamp,
        digest/filename mismatch) are quarantined under ``quarantine/``
        rather than deleted -- the evidence survives for debugging, and
        the next sweep simply re-simulates the affected points.  With
        ``heal=False`` the scan only reports.
        """
        report: dict = {
            "scanned": 0,
            "ok": 0,
            "quarantined": [],
            "ledger": {},
        }
        for path in self._entry_paths():
            report["scanned"] += 1
            problem = self._entry_problem(path)
            if problem is None:
                report["ok"] += 1
                continue
            moved = self._quarantine(path) if heal else None
            report["quarantined"].append(
                {
                    "path": str(path),
                    "problem": problem,
                    "moved_to": str(moved) if moved is not None else None,
                }
            )
        report["ledger"] = self.ledger().heal(
            self.quarantine_dir if heal else None
        )
        return report

    def info(self) -> dict:
        """Summary of what is on disk (all schema versions)."""
        entries = self._entry_paths()
        current = [p for p in entries if p.is_relative_to(self.version_dir)]
        total_bytes = 0
        for path in entries:
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
        from repro.engine.checkpoint import list_checkpoints

        return {
            "root": str(self.root),
            "schema": SCHEMA_VERSION,
            "entries": len(entries),
            "current_schema_entries": len(current),
            "bytes": total_bytes,
            "checkpoints": len(list_checkpoints(self.root)),
            "ledger": self.ledger().info(),
        }

    def clear(self) -> int:
        """Delete every stored entry (all schema versions); returns count.

        Checkpoints go with the entries -- they describe progress against
        results that no longer exist -- but the run ledger survives: it
        is history, not cache.
        """
        entries = self._entry_paths()
        removed = 0
        for path in entries:
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        for checkpoint_path in self.root.glob("checkpoints/*.jsonl"):
            try:
                checkpoint_path.unlink()
            except OSError:
                continue
        try:
            (self.root / "checkpoints").rmdir()
        except OSError:
            pass
        # Prune now-empty shard/version directories, then the root if bare.
        for directory in sorted(
            (p for p in self.root.glob("v*/*") if p.is_dir()), reverse=True
        ):
            try:
                directory.rmdir()
            except OSError:
                pass
        for directory in self.root.glob("v*"):
            try:
                directory.rmdir()
            except OSError:
                pass
        return removed
