"""Chunked, cost-aware dispatch planning for the parallel engine.

The executor used to submit one future per design point and consume
them in submission order, so one slow point at the head of the queue
stalled every completed result behind it, and per-point submit/pickle
overhead was paid ``len(points)`` times.  This module plans the batch
instead:

* a :class:`CostModel` estimates each point's relative wall clock --
  exact cycle counts from the run ledger when the point (or its
  workload) has history, a settings-budget proxy otherwise;
* :func:`plan_chunks` packs the points, **largest estimated cost
  first**, into a few self-scheduled chunks per worker.  The expensive
  head of the sweep runs first (so it never becomes the last straggler)
  and the cheap tail is batched so per-task overhead stops mattering.
  Workers pull chunks from the pool's shared call queue as they go
  idle -- classic self-scheduling, which behaves like work stealing
  without a per-worker deque;
* a :class:`DispatchProfile` records where the batch's wall clock went
  (pool reuse, submit, drain, absorb, retry tail) and what every worker
  did (points, chunks, busy seconds, steals).  The profile is kept on
  the engine (``engine.last_dispatch``), emitted on the trace channel
  (``engine.dispatch``), and surfaced by the telemetry hub in
  ``--progress`` and ``/metrics``.

Cost estimates influence *scheduling only*: results, the ledger (rows
are digest-sorted), checkpoint marks (set semantics), and the failure
log (the retry tail replays in plan order) are identical to a serial
run no matter how wrong the estimates are.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.key import ExperimentKey
    from repro.workloads.generator import WorkloadSpec

#: Chunks planned per worker.  More chunks = better load balance when
#: estimates are wrong; fewer = less dispatch overhead.  A handful per
#: worker keeps both small.
CHUNKS_PER_WORKER_ENV = "REPRO_CHUNKS_PER_WORKER"
DEFAULT_CHUNKS_PER_WORKER = 4

#: Hard cap on points per chunk, so a mis-estimated cheap tail cannot
#: collapse into one serial mega-chunk.
CHUNK_MAX_ENV = "REPRO_CHUNK_MAX"
DEFAULT_CHUNK_MAX = 16

#: Relative cost of one timing-phase instruction versus one
#: functional-warmup reference (the timing loop simulates the pipeline
#: and the full hierarchy; warm-up only touches the caches).
_TIMING_WEIGHT = 8.0

#: How many recent ledger records feed the cost model.
_HISTORY_RECORDS = 50


def _int_env(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw:
        try:
            value = int(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return default


def _budget_proxy(key: "ExperimentKey") -> float:
    """Settings-only cost proxy: weighted instructions to simulate."""
    settings = key.settings
    return float(settings.functional_warmup) + _TIMING_WEIGHT * float(
        settings.timing_warmup + settings.instructions
    )


class CostModel:
    """Relative wall-clock estimates for design points.

    Resolution order per point:

    1. exact history -- the last ledger ``cycles`` recorded for this
       digest (cycles are an excellent wall-clock proxy within one
       backend);
    2. workload history -- the workload's mean cycles-per-instruction,
       scaled by the point's settings budget;
    3. the settings budget proxy alone.

    Estimates only order and group work, so a cold ledger degrades to
    budget-proportional scheduling, never to wrong results.
    """

    def __init__(
        self,
        exact: "dict[str, float] | None" = None,
        workload_cpi: "dict[str, float] | None" = None,
    ):
        self._exact = exact or {}
        self._workload_cpi = workload_cpi or {}

    @classmethod
    def from_records(cls, records: "Iterable[dict]") -> "CostModel":
        """Build from run-ledger records (newest record wins per digest)."""
        exact: dict[str, float] = {}
        cpi_sums: dict[str, list[float]] = {}
        for record in records:
            for row in record.get("points", ()):
                digest = row.get("digest")
                cycles = row.get("cycles") or 0
                instructions = row.get("instructions") or 0
                if not digest or cycles <= 0:
                    continue
                exact[digest] = float(cycles)
                workload = row.get("workload")
                if workload and instructions > 0:
                    cpi_sums.setdefault(workload, []).append(
                        cycles / instructions
                    )
        workload_cpi = {
            workload: sum(samples) / len(samples)
            for workload, samples in cpi_sums.items()
        }
        return cls(exact, workload_cpi)

    @classmethod
    def for_engine(cls, engine) -> "CostModel":
        """The model for one batch: ledger history when a store exists."""
        if engine.store is None:
            return cls()
        try:
            records = engine.store.ledger().records()[-_HISTORY_RECORDS:]
        except Exception:  # noqa: BLE001 - scheduling must never fail a run
            return cls()
        return cls.from_records(records)

    def estimate(self, key: "ExperimentKey") -> float:
        exact = self._exact.get(key.digest[:12])
        if exact is not None:
            return exact
        proxy = _budget_proxy(key)
        cpi = self._workload_cpi.get(key.workload)
        if cpi is not None:
            return cpi * proxy
        return proxy


def plan_chunks(
    points: "list[tuple[ExperimentKey, WorkloadSpec]]",
    estimate: "Callable[[ExperimentKey], float]",
    workers: int,
) -> "list[list[tuple[ExperimentKey, WorkloadSpec]]]":
    """Pack points into cost-balanced chunks, most expensive first.

    Points are sorted by descending estimated cost (digest-tiebroken,
    so the plan is deterministic), then greedily packed until a chunk
    reaches the batch's target cost (total / (workers x
    chunks-per-worker)) or the per-chunk point cap.  Expensive points
    therefore land in small (often singleton) head chunks while the
    cheap tail is batched -- the schedule that minimizes both straggler
    latency and per-task overhead.
    """
    if not points:
        return []
    per_worker = _int_env(CHUNKS_PER_WORKER_ENV, DEFAULT_CHUNKS_PER_WORKER)
    chunk_max = _int_env(CHUNK_MAX_ENV, DEFAULT_CHUNK_MAX)
    costs = {key.digest: max(estimate(key), 1.0) for key, _ in points}
    ordered = sorted(
        points, key=lambda pair: (-costs[pair[0].digest], pair[0].digest)
    )
    target_chunks = max(workers * per_worker, 1)
    target_cost = sum(costs.values()) / target_chunks
    chunks: list[list[tuple]] = []
    current: list[tuple] = []
    current_cost = 0.0
    for key, spec in ordered:
        current.append((key, spec))
        current_cost += costs[key.digest]
        if current_cost >= target_cost or len(current) >= chunk_max:
            chunks.append(current)
            current = []
            current_cost = 0.0
    if current:
        chunks.append(current)
    return chunks


class WorkerDispatchStats:
    """What one worker process did during a batch."""

    __slots__ = ("worker", "points", "chunks", "busy_seconds", "steals")

    def __init__(self, worker: str):
        self.worker = worker
        self.points = 0
        self.chunks = 0
        self.busy_seconds = 0.0
        self.steals = 0

    def as_dict(self) -> dict:
        return {
            "points": self.points,
            "chunks": self.chunks,
            "busy_seconds": round(self.busy_seconds, 3),
            "steals": self.steals,
        }


class DispatchProfile:
    """Per-batch dispatch instrumentation (the "where did time go" map).

    ``steals`` counts chunks a worker pulled from the shared queue
    beyond its first -- in a perfectly pre-partitioned schedule each
    worker would run exactly ``chunks / workers`` chunks, so pulls past
    the first are the self-scheduling (work-stealing) behavior showing
    up in numbers.
    """

    def __init__(self, points: int, workers: int):
        self.points = points
        self.workers = workers
        self.chunks = 0
        self.pool_reused = False
        self.pool_create_seconds = 0.0
        self.prewarm_seconds = 0.0
        self.submit_seconds = 0.0
        self.drain_seconds = 0.0
        self.retry_seconds = 0.0
        self.wall_seconds = 0.0
        self.fallback_points = 0
        self.timeout_points = 0
        self.interrupted = False
        self._workers: dict[str, WorkerDispatchStats] = {}

    def worker_stats(self, worker: str) -> WorkerDispatchStats:
        stats = self._workers.get(worker)
        if stats is None:
            stats = self._workers[worker] = WorkerDispatchStats(worker)
        return stats

    def chunk_started(self, worker: str) -> None:
        stats = self.worker_stats(worker)
        stats.chunks += 1
        if stats.chunks > 1:
            stats.steals += 1

    def point_done(self, worker: str, busy_seconds: float) -> None:
        stats = self.worker_stats(worker)
        stats.points += 1
        stats.busy_seconds += busy_seconds

    @property
    def total_steals(self) -> int:
        return sum(stats.steals for stats in self._workers.values())

    def utilization(self) -> float:
        """Aggregate worker busy time over the batch's wall x workers."""
        if self.wall_seconds <= 0 or self.workers <= 0:
            return 0.0
        busy = sum(s.busy_seconds for s in self._workers.values())
        return min(1.0, busy / (self.wall_seconds * self.workers))

    def as_dict(self) -> dict:
        return {
            "points": self.points,
            "chunks": self.chunks,
            "workers": self.workers,
            "pool_reused": self.pool_reused,
            "pool_create_seconds": round(self.pool_create_seconds, 3),
            "prewarm_seconds": round(self.prewarm_seconds, 3),
            "submit_seconds": round(self.submit_seconds, 3),
            "drain_seconds": round(self.drain_seconds, 3),
            "retry_seconds": round(self.retry_seconds, 3),
            "wall_seconds": round(self.wall_seconds, 3),
            "fallback_points": self.fallback_points,
            "timeout_points": self.timeout_points,
            "interrupted": self.interrupted,
            "steals": self.total_steals,
            "utilization": round(self.utilization(), 3),
            "worker_stats": {
                worker: stats.as_dict()
                for worker, stats in sorted(self._workers.items())
            },
        }
