"""Persistent run ledger: every sweep leaves a durable, diffable record.

The content-addressed result store remembers individual simulation
results, but a finished *run* -- which points, which outcomes, what the
headline numbers were, how long it took -- used to evaporate when the
process exited.  The ledger keeps that history: every
:meth:`~repro.engine.executor.ExecutionPlan.execute` appends one JSON
line to ``<store-root>/runs.jsonl``, and the CLI verbs ``repro runs
list|show|compare`` read it back.

``compare_runs`` is the drift detector: two runs of the same plan (same
``plan_digest``) should agree metric-for-metric, exactly -- the same
zero-tolerance bar the golden-reference suite holds figures to.  Any
disagreement beyond ``rel_tol`` is flagged per point and metric, which
turns "did that refactor change simulated timing?" into a one-command
answer against real history instead of a fresh golden regeneration.

Robustness rules mirror the store's: records are single ``O_APPEND``
writes (concurrent runs interleave whole lines, never tear them),
corrupt lines are skipped on read, and a ledger failure never fails the
sweep that tried to record it.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import warnings
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.observability import counters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cpu.result import SimulationResult
    from repro.engine.key import ExperimentKey

#: Bump when the record shape changes; old records are still listed but
#: never compared against.
LEDGER_SCHEMA = 1

#: Ledger file name, directly under the store root (outside the
#: ``v*/??/`` shard layout, so store entry counts never include it).
LEDGER_NAME = "runs.jsonl"


def plan_digest(keys: "Iterable[ExperimentKey]") -> str:
    """Identity of a plan: SHA-256 over its sorted point digests.

    Two runs with the same plan digest executed the exact same design
    points (organization, workload, and scaled settings all pinned), so
    their metrics are directly comparable.
    """
    joined = "\n".join(sorted(key.digest for key in keys))
    return hashlib.sha256(joined.encode("ascii")).hexdigest()


def _finite(value: float) -> float | None:
    """JSON-safe number: NaN/inf (gap sentinels) become ``None``."""
    return value if math.isfinite(value) else None


def build_record(
    points: "dict[ExperimentKey, SimulationResult]",
    outcomes: "dict[ExperimentKey, str]",
    *,
    wall_seconds: float,
    jobs: int,
    store_schema: int,
    run_id: str = "",
    interrupted: bool = False,
    point_seconds: "dict[ExperimentKey, float] | None" = None,
    spans: dict | None = None,
) -> dict:
    """One ledger record for a finished ``execute()`` batch.

    ``outcomes`` maps each key to how it was resolved: ``memo`` /
    ``store`` (cache layers), ``simulated`` (full budget), or the
    resilience outcomes ``recovered`` / ``gap`` / ``timeout``.
    ``interrupted`` marks the partial record a graceful shutdown writes
    before the process exits.  ``point_seconds`` adds per-point
    wall-clock seconds to the rows (cache hits have none), and
    ``spans``, when the sweep span recorder was active, stores where
    its trace went (trace id, sink path, top spans) -- neither joins
    ``_COMPARED_METRICS``, so timing never reads as drift.
    """
    from repro.core.experiment import scale_factor

    digest = plan_digest(points)
    seconds_by_key = point_seconds or {}
    rows = []
    for key in sorted(points, key=lambda k: k.digest):
        result = points[key]
        seconds = seconds_by_key.get(key)
        rows.append(
            {
                "digest": key.digest[:12],
                "seconds": round(seconds, 3) if seconds is not None else None,
                "label": key.label,
                "workload": key.workload,
                "outcome": outcomes.get(key, "simulated"),
                "ipc": _finite(result.ipc),
                "instructions": result.instructions,
                "cycles": result.cycles,
                # Provenance: which kernel backend produced the numbers
                # ("" for cache hits predating the seam).  Deliberately
                # NOT in _COMPARED_METRICS -- backends are
                # result-identical, so a backend change is not drift.
                "backend": result.backend,
                # Bounded digest of the interval counter series, or None
                # when sampling was off.  The series itself stays in the
                # store payload so ledger lines keep a fixed size no
                # matter how fine the sampling interval was.  Not in
                # _COMPARED_METRICS: sampling on/off is not drift.
                "counters": counters.series_summary(result.counters),
            }
        )
    tally = {
        "memo": 0,
        "store": 0,
        "simulated": 0,
        "recovered": 0,
        "gap": 0,
        "timeout": 0,
    }
    for row in rows:
        tally[row["outcome"]] = tally.get(row["outcome"], 0) + 1
    ipcs = [row["ipc"] for row in rows if row["ipc"] is not None]
    record = {
        "schema": LEDGER_SCHEMA,
        "run_id": run_id,
        "time_utc": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "plan_digest": digest,
        "store_schema": store_schema,
        "scale": scale_factor(),
        "jobs": jobs,
        "wall_seconds": round(wall_seconds, 3),
        "summary": {
            "points": len(rows),
            "memo": tally["memo"],
            "store": tally["store"],
            "simulated": tally["simulated"],
            "recovered": tally["recovered"],
            # A timeout is a gap with a cause attached; "gaps" stays
            # the total so existing consumers keep adding up.
            "gaps": tally["gap"] + tally["timeout"],
            "timeouts": tally["timeout"],
            "mean_ipc": (
                round(sum(ipcs) / len(ipcs), 6) if ipcs else None
            ),
        },
        "points": rows,
    }
    if interrupted:
        record["interrupted"] = True
    if spans:
        record["spans"] = spans
    return record


class RunLedger:
    """Append-only JSONL history of executed plans."""

    def __init__(self, path: Path | str):
        self.path = Path(path)

    # -- write ----------------------------------------------------------

    def append(self, record: dict) -> str | None:
        """Append one record; returns its run id, or None on I/O failure.

        The run id -- ``r<seq>-<plan_digest[:8]>`` -- is assigned here so
        it reflects the ledger's own ordering.  The write is a single
        ``O_APPEND`` syscall of one line, so concurrent runs sharing a
        cache directory interleave whole records.
        """
        run_id = f"r{len(self.records()) + 1:04d}-{record['plan_digest'][:8]}"
        record = dict(record, run_id=run_id)
        try:
            line = json.dumps(record, separators=(",", ":"), allow_nan=False)
        except ValueError:
            return None
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, (line + "\n").encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            return None
        return run_id

    # -- read -----------------------------------------------------------

    def records(self) -> list[dict]:
        """Every readable record, oldest first; corrupt lines skipped.

        A final line that both fails to parse *and* lacks the trailing
        newline is the signature of an append torn by a crash or kill;
        it gets a one-line warning (a mid-file corrupt line stays
        silent, as before) and is otherwise ignored -- the ledger heals
        by appending past it, and ``repro cache verify`` can excise it.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return []
        records = []
        lines = text.splitlines()
        for position, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if position == len(lines) - 1 and not text.endswith("\n"):
                    warnings.warn(
                        f"run ledger {self.path} ends in a torn, partially "
                        "written record (interrupted append); ignoring it",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                continue
            if isinstance(record, dict) and "plan_digest" in record:
                records.append(record)
        return records

    def heal(self, quarantine_dir: "Path | None" = None) -> dict:
        """Repair a torn trailing line, quarantining the fragment.

        Returns a report dict: ``torn`` says whether damage was found,
        ``healed`` whether the file was fixed, ``fragment_path`` where
        the torn bytes went (when a quarantine directory was given).
        A last line that parses but merely lacks its newline is
        completed in place instead of excised.
        """
        report: dict = {"torn": False, "healed": False, "fragment_path": None}
        try:
            data = self.path.read_bytes()
        except OSError:
            return report
        if not data or data.endswith(b"\n"):
            return report
        cut = data.rfind(b"\n") + 1
        tail = data[cut:]
        try:
            json.loads(tail.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            pass
        else:
            # Complete record, missing only its newline: finish the append.
            try:
                with self.path.open("ab") as handle:
                    handle.write(b"\n")
            except OSError:
                return report
            report["healed"] = True
            return report
        report["torn"] = True
        if quarantine_dir is not None:
            try:
                quarantine_dir = Path(quarantine_dir)
                quarantine_dir.mkdir(parents=True, exist_ok=True)
                fragment = quarantine_dir / f"{self.path.name}.torn"
                suffix = 0
                while fragment.exists():
                    suffix += 1
                    fragment = quarantine_dir / f"{self.path.name}.torn.{suffix}"
                fragment.write_bytes(tail)
                report["fragment_path"] = str(fragment)
            except OSError:
                pass
        try:
            with self.path.open("r+b") as handle:
                handle.truncate(cut)
        except OSError:
            return report
        report["healed"] = True
        return report

    def resolve(self, ref: str) -> dict | None:
        """A record by reference: index, run id, id prefix, or ``last``.

        Accepted forms: ``last`` (most recent), a 1-based index
        (negative counts from the end, ``-1`` = last), an exact
        ``run_id``, or an unambiguous run-id prefix.
        """
        records = self.records()
        if not records:
            return None
        if ref == "last":
            return records[-1]
        try:
            index = int(ref)
        except ValueError:
            index = None
        if index is not None:
            if index == 0:
                return None
            position = index - 1 if index > 0 else index
            try:
                return records[position]
            except IndexError:
                return None
        exact = [r for r in records if r.get("run_id") == ref]
        if exact:
            return exact[-1]
        prefixed = [
            r for r in records if str(r.get("run_id", "")).startswith(ref)
        ]
        if len(prefixed) == 1:
            return prefixed[0]
        return None

    def previous_of_same_plan(self, record: dict) -> dict | None:
        """The most recent earlier run that executed the same plan.

        This is what a bare ``repro runs compare`` diffs against: a
        figure command may append several records per invocation (one
        per ``execute()``), so "the last two records" is rarely the
        right pair -- "this plan versus the last time this exact plan
        ran" always is.
        """
        records = self.records()
        run_id = record.get("run_id")
        cutoff = len(records)
        for position, candidate in enumerate(records):
            if candidate.get("run_id") == run_id:
                cutoff = position
                break
        earlier = [
            r
            for r in records[:cutoff]
            if r.get("plan_digest") == record.get("plan_digest")
            and r.get("schema") == record.get("schema")
        ]
        return earlier[-1] if earlier else None

    def info(self) -> dict:
        """Ledger stats for ``repro cache info``."""
        records = self.records()
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return {
            "path": str(self.path),
            "runs": len(records),
            "last_run_id": records[-1].get("run_id") if records else None,
            "last_time_utc": records[-1].get("time_utc") if records else None,
            "bytes": size,
        }

    def clear(self) -> int:
        """Delete the ledger file; returns the number of records dropped."""
        count = len(self.records())
        try:
            self.path.unlink(missing_ok=True)
        except OSError:
            return 0
        return count


# ---------------------------------------------------------------------------
# Cross-run drift detection
# ---------------------------------------------------------------------------

#: Per-point metrics compared across runs.
_COMPARED_METRICS = ("ipc", "instructions", "cycles")


@dataclass
class Drift:
    """One metric of one point disagreeing between two runs."""

    label: str
    metric: str
    value_a: float | None
    value_b: float | None

    def render(self) -> str:
        def fmt(value):
            if value is None:
                return "gap"
            if isinstance(value, float):
                return f"{value:.6f}"
            return str(value)

        return (
            f"{self.label}: {self.metric} "
            f"{fmt(self.value_a)} -> {fmt(self.value_b)}"
        )


@dataclass
class RunComparison:
    """The result of diffing run ``a`` (older) against run ``b`` (newer)."""

    run_a: str
    run_b: str
    same_plan: bool
    matched_points: int = 0
    drifts: list[Drift] = field(default_factory=list)
    only_in_a: list[str] = field(default_factory=list)
    only_in_b: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the runs agree on every shared point and metric."""
        return not self.drifts and not self.only_in_a and not self.only_in_b


def _values_drift(a, b, rel_tol: float) -> bool:
    if a is None and b is None:
        return False
    if a is None or b is None:
        return True  # a gap appeared or disappeared
    if a == b:
        return False
    if rel_tol <= 0.0:
        return True
    scale = max(abs(a), abs(b))
    return abs(a - b) > rel_tol * scale


def compare_runs(
    record_a: dict, record_b: dict, rel_tol: float = 0.0
) -> RunComparison:
    """Diff two ledger records point-by-point, metric-by-metric.

    ``rel_tol`` defaults to 0.0 -- exact agreement, the golden-suite
    bar: the simulator is deterministic, so two runs of the same plan
    have no honest reason to differ at all.
    """
    comparison = RunComparison(
        run_a=record_a.get("run_id", "?"),
        run_b=record_b.get("run_id", "?"),
        same_plan=record_a.get("plan_digest") == record_b.get("plan_digest"),
    )
    points_a = {row["digest"]: row for row in record_a.get("points", [])}
    points_b = {row["digest"]: row for row in record_b.get("points", [])}
    comparison.only_in_a = sorted(
        points_a[d]["label"] for d in points_a.keys() - points_b.keys()
    )
    comparison.only_in_b = sorted(
        points_b[d]["label"] for d in points_b.keys() - points_a.keys()
    )
    for digest in sorted(points_a.keys() & points_b.keys()):
        row_a, row_b = points_a[digest], points_b[digest]
        comparison.matched_points += 1
        for metric in _COMPARED_METRICS:
            value_a, value_b = row_a.get(metric), row_b.get(metric)
            if _values_drift(value_a, value_b, rel_tol):
                comparison.drifts.append(
                    Drift(row_a["label"], metric, value_a, value_b)
                )
    return comparison
