"""Design-point execution engine: batch scheduling, workers, result store.

The paper's evaluation is a large design-space sweep; this package
treats each (cache organization, workload, settings) point as a
schedulable, cacheable unit of work instead of an inline function call:

* :class:`~repro.engine.key.ExperimentKey` -- canonical, hashable,
  JSON-serializable identity with a process-stable SHA-256 digest;
* :class:`~repro.engine.executor.ExecutionPlan` -- the
  plan -> execute -> resolve batch API figures and sweeps declare their
  design points through;
* :class:`~repro.engine.executor.Engine` /
  :func:`~repro.engine.executor.configure_engine` -- process-wide
  parallelism (``--jobs N``) and cache layering;
* :class:`~repro.engine.store.ResultStore` -- the persistent
  ``.repro-cache/`` content-addressed result store;
* :mod:`repro.engine.serialize` -- exact to/from-dict round trips for
  results and configurations.
"""

from repro.engine.executor import (
    Engine,
    ExecutionPlan,
    WorkerFailureError,
    configure_engine,
    get_engine,
    run_point_payload,
)
from repro.engine.key import ExperimentKey
from repro.engine.serialize import (
    SerializationError,
    organization_from_dict,
    organization_to_dict,
    result_from_dict,
    result_to_dict,
    settings_from_dict,
    settings_to_dict,
)
from repro.engine.store import (
    CACHE_DIR_ENV,
    SCHEMA_VERSION,
    ResultStore,
    default_cache_root,
)

__all__ = [
    "Engine",
    "ExecutionPlan",
    "WorkerFailureError",
    "configure_engine",
    "get_engine",
    "run_point_payload",
    "ExperimentKey",
    "SerializationError",
    "organization_from_dict",
    "organization_to_dict",
    "result_from_dict",
    "result_to_dict",
    "settings_from_dict",
    "settings_to_dict",
    "CACHE_DIR_ENV",
    "SCHEMA_VERSION",
    "ResultStore",
    "default_cache_root",
]
