"""Cache pipelining math (section 2.2) and cycle-time/size trade-offs.

A cache whose access time exceeds the processor cycle time must be
pipelined.  Each additional pipeline stage inserts a latch costing
1.5 FO4 [section 2.2], so a cache with access time ``a`` FO4 fits in
``d`` cycles of a ``T``-FO4 clock when::

    a + 1.5 * (d - 1) <= d * T

These helpers answer the two questions Figure 9 needs: how deep must a
given cache be pipelined, and what is the largest cache that fits at a
given (cycle time, depth) point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.timing import cacti
from repro.timing.process import LATCH_OVERHEAD_FO4

#: Hit-time depths studied by the paper (1-3 processor cycles).
MAX_PIPELINE_DEPTH = 3


def pipelined_access_fo4(access_fo4: float, depth: int) -> float:
    """Total access latency including pipeline latch overhead."""
    if depth < 1:
        raise ValueError(f"pipeline depth must be >= 1, got {depth}")
    return access_fo4 + LATCH_OVERHEAD_FO4 * (depth - 1)


def fits_in_cycles(access_fo4: float, depth: int, cycle_time_fo4: float) -> bool:
    """True if a cache with the given access time fits in ``depth`` cycles."""
    if cycle_time_fo4 <= 0:
        raise ValueError(f"cycle time must be positive, got {cycle_time_fo4}")
    return pipelined_access_fo4(access_fo4, depth) <= depth * cycle_time_fo4 + 1e-9


def required_depth(
    access_fo4: float, cycle_time_fo4: float, max_depth: int = MAX_PIPELINE_DEPTH
) -> int | None:
    """Minimum pipeline depth that accommodates the cache, or None."""
    for depth in range(1, max_depth + 1):
        if fits_in_cycles(access_fo4, depth, cycle_time_fo4):
            return depth
    return None


@dataclass(frozen=True)
class CacheFit:
    """The largest cache realizable at a (cycle time, depth) design point."""

    size_bytes: int
    depth: int
    cycle_time_fo4: float
    access_fo4: float


def max_cache_size(
    cycle_time_fo4: float,
    depth: int,
    *,
    banked: bool = False,
    sizes: tuple[int, ...] = cacti.FIGURE1_SIZES,
) -> CacheFit | None:
    """Largest cache from ``sizes`` that fits in ``depth`` cycles.

    Returns ``None`` when even the smallest size does not fit -- the
    paper notes that below 24 FO4 "the processor cannot support a
    single-cycle non-pipelined cache of even 4 KBytes".
    """
    best: CacheFit | None = None
    for size in sizes:
        access = (
            cacti.banked_access_fo4(size)
            if banked
            else cacti.single_ported_access_fo4(size)
        )
        if fits_in_cycles(access, depth, cycle_time_fo4):
            if best is None or size > best.size_bytes:
                best = CacheFit(size, depth, cycle_time_fo4, access)
    return best


def design_points(
    cycle_times_fo4: tuple[float, ...],
    depths: tuple[int, ...] = (1, 2, 3),
    *,
    banked: bool = False,
) -> list[CacheFit]:
    """All realizable (cycle time, depth, max size) points for Figure 9."""
    points = []
    for cycle_time in cycle_times_fo4:
        for depth in depths:
            fit = max_cache_size(cycle_time, depth, banked=banked)
            if fit is not None:
                points.append(fit)
    return points
