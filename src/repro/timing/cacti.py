"""Analytical SRAM access-time model in the style of cacti [Wilt96].

The paper uses a modified cacti (sub-array limit raised from 8 to 32) to
produce Figure 1: access time in FO4 for single-ported and eight-way
banked caches from 4 KB to 1 MB.  This module reimplements the essential
structure of that model:

* a cache is split into ``Ndwl * Ndbl`` sub-arrays, with ``Nspd`` sets
  mapped per wordline;
* the access path is decoder -> wordline -> bitline -> sense amplifier
  -> tag comparison -> output drive, plus wire delay to route data across
  the array and between banks;
* the model searches all organizations inside the design space and
  reports the fastest one.

Like cacti itself (which was calibrated against SPICE), the raw RC model
is calibrated against published anchors.  We use the paper's own numbers:
an 8 KB cache is 25 FO4 [Horo96], a 512 KB cache is 1.67x that, and a
1 MB cache is 2.20x that (section 2.2).  A monotone log-size correction
through those anchors is applied to the raw model so that the reproduced
Figure 1 matches the paper where the paper pins it down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.timing.process import DEFAULT_PROCESS, ProcessParameters, ns_to_fo4

#: Design-space bounds.  The paper raised cacti's sub-array limit to 32.
MAX_SUBARRAYS = 32
_NDWL_CHOICES = (1, 2, 4, 8)
_NDBL_CHOICES = (1, 2, 4, 8, 16, 32)
_NSPD_CHOICES = (1, 2, 4)

#: Cache sizes considered by the paper's SRAM study (Figure 1).
FIGURE1_SIZES = tuple(2**k for k in range(12, 21))  # 4 KB .. 1 MB


@dataclass(frozen=True)
class ArrayOrganization:
    """One point in the cacti design space."""

    ndwl: int  #: number of wordline divisions
    ndbl: int  #: number of bitline divisions
    nspd: int  #: sets mapped onto one physical wordline

    @property
    def subarrays(self) -> int:
        return self.ndwl * self.ndbl


@dataclass(frozen=True)
class AccessTimeResult:
    """Access time of the best organization found for a cache geometry."""

    size_bytes: int
    associativity: int
    block_bytes: int
    organization: ArrayOrganization
    raw_ns: float  #: uncalibrated RC model output
    access_fo4: float  #: calibrated access time in FO4

    @property
    def access_ns(self) -> float:
        from repro.timing.process import fo4_to_ns

        return fo4_to_ns(self.access_fo4)


class CacheGeometryError(ValueError):
    """Raised for cache geometries outside the modeled design space."""


def _subarray_geometry(
    size_bytes: int, associativity: int, block_bytes: int, org: ArrayOrganization
) -> tuple[float, float]:
    """Rows and columns of one sub-array, or raises if not realizable."""
    rows = size_bytes / (block_bytes * associativity * org.ndbl * org.nspd)
    cols = 8 * block_bytes * associativity * org.nspd / org.ndwl
    if rows < 1 or cols < 8:
        raise CacheGeometryError(
            f"organization {org} degenerate for {size_bytes}B cache"
        )
    return rows, cols


def _organization_delay_ns(
    size_bytes: int,
    associativity: int,
    block_bytes: int,
    org: ArrayOrganization,
    process: ProcessParameters,
) -> float:
    """Raw RC access time of a specific organization, in nanoseconds."""
    rows, cols = _subarray_geometry(size_bytes, associativity, block_bytes, org)
    p = process
    decoder = p.decoder_base_ns + p.decoder_per_bit_ns * math.log2(max(rows, 2.0))
    wordline = p.wordline_base_ns + p.wordline_per_column_ns * cols
    bitline = p.bitline_base_ns + p.bitline_per_row_ns * rows
    comparator = p.comparator_base_ns + p.comparator_per_way_ns * math.log2(
        max(associativity, 2)
    )
    routing = p.routing_per_sqrt_kb_ns * math.sqrt(size_bytes / 1024.0)
    bank_wiring = p.bank_wiring_per_sqrt_bank_ns * math.sqrt(org.subarrays)
    return (
        decoder
        + wordline
        + bitline
        + p.sense_amp_ns
        + comparator
        + p.output_driver_ns
        + routing
        + bank_wiring
    )


def _search_organizations(
    size_bytes: int,
    associativity: int,
    block_bytes: int,
    min_subarrays: int,
    process: ProcessParameters,
) -> tuple[ArrayOrganization, float]:
    """Exhaustively search the design space for the fastest organization."""
    best: tuple[ArrayOrganization, float] | None = None
    for ndwl in _NDWL_CHOICES:
        for ndbl in _NDBL_CHOICES:
            for nspd in _NSPD_CHOICES:
                org = ArrayOrganization(ndwl, ndbl, nspd)
                if not min_subarrays <= org.subarrays <= MAX_SUBARRAYS:
                    continue
                try:
                    delay = _organization_delay_ns(
                        size_bytes, associativity, block_bytes, org, process
                    )
                except CacheGeometryError:
                    continue
                if best is None or delay < best[1]:
                    best = (org, delay)
    if best is None:
        raise CacheGeometryError(
            f"no realizable organization for size={size_bytes} assoc="
            f"{associativity} block={block_bytes} min_subarrays={min_subarrays}"
        )
    return best


# ---------------------------------------------------------------------------
# Anchor calibration
# ---------------------------------------------------------------------------

#: (size_bytes, access time in FO4) anchors stated by the paper.
#: 8 KB = 25 FO4 [Horo96]; section 2.2: at a 25 FO4 cycle "a 512 Kbyte
#: cache can be accessed in 1.67 cycles, and a 1 Mbyte cache ... 2.20";
#: section 4.4: "a processor cycle time of 29 FO4 can accommodate a one
#: cycle 64 Kbyte duplicate cache".
PAPER_ANCHORS: tuple[tuple[int, float], ...] = (
    (8 * 1024, 25.0),
    (64 * 1024, 29.0),
    (512 * 1024, 1.67 * 25.0),
    (1024 * 1024, 2.20 * 25.0),
)

#: Reference geometry for the anchors: the paper's primary data cache is
#: two-way set-associative with 32-byte lines.
ANCHOR_ASSOCIATIVITY = 2
ANCHOR_BLOCK_BYTES = 32


@lru_cache(maxsize=None)
def _anchor_corrections(process: ProcessParameters) -> tuple[tuple[float, float], ...]:
    """Per-anchor multiplicative corrections in (log2 size, factor) form."""
    corrections = []
    for size, target_fo4 in PAPER_ANCHORS:
        _, raw_ns = _search_organizations(
            size, ANCHOR_ASSOCIATIVITY, ANCHOR_BLOCK_BYTES, 1, process
        )
        corrections.append((math.log2(size), target_fo4 / ns_to_fo4(raw_ns)))
    return tuple(corrections)


def _correction_factor(size_bytes: int, process: ProcessParameters) -> float:
    """Interpolate the anchor correction at ``size_bytes`` (log-size linear)."""
    anchors = _anchor_corrections(process)
    x = math.log2(size_bytes)
    if x <= anchors[0][0]:
        return anchors[0][1]
    if x >= anchors[-1][0]:
        return anchors[-1][1]
    for (x0, f0), (x1, f1) in zip(anchors, anchors[1:]):
        if x0 <= x <= x1:
            t = (x - x0) / (x1 - x0)
            return f0 + t * (f1 - f0)
    raise AssertionError("unreachable: anchors are sorted")


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def access_time(
    size_bytes: int,
    *,
    associativity: int = ANCHOR_ASSOCIATIVITY,
    block_bytes: int = ANCHOR_BLOCK_BYTES,
    min_banks: int = 1,
    process: ProcessParameters = DEFAULT_PROCESS,
) -> AccessTimeResult:
    """Access time of the fastest cache organization for a geometry.

    ``min_banks`` constrains the search the way the paper constrains its
    modified cacti: ``min_banks=8`` forces "eight or more banks" and
    yields the eight-way banked curve of Figure 1; the default reproduces
    the single-ported curve.
    """
    if size_bytes <= 0 or size_bytes & (size_bytes - 1):
        raise CacheGeometryError(f"cache size must be a power of two: {size_bytes}")
    if associativity < 1:
        raise CacheGeometryError(f"associativity must be >= 1: {associativity}")
    if min_banks < 1:
        raise CacheGeometryError(f"min_banks must be >= 1: {min_banks}")
    org, raw_ns = _search_organizations(
        size_bytes, associativity, block_bytes, min_banks, process
    )
    fo4 = ns_to_fo4(raw_ns) * _correction_factor(size_bytes, process)
    return AccessTimeResult(
        size_bytes=size_bytes,
        associativity=associativity,
        block_bytes=block_bytes,
        organization=org,
        raw_ns=raw_ns,
        access_fo4=fo4,
    )


def single_ported_access_fo4(size_bytes: int) -> float:
    """Figure 1 single-ported curve at one size, in FO4."""
    return access_time(size_bytes).access_fo4


def banked_access_fo4(size_bytes: int, banks: int = 8) -> float:
    """Figure 1 eight-way (or more) banked curve at one size, in FO4.

    The paper assumes "no timing penalty for changing an internally
    banked cache to an externally banked cache", so external banking is
    modeled exactly as a min-subarray constraint on the search.
    """
    return access_time(size_bytes, min_banks=banks).access_fo4


def duplicate_access_fo4(size_bytes: int) -> float:
    """Access time of one copy of a duplicate (dual-ported) cache.

    Section 2.1: duplicating the cache doubles area but "the access times
    for single-ported caches ... can also be used for duplicate caches".
    """
    return single_ported_access_fo4(size_bytes)


def figure1_curves(
    sizes: tuple[int, ...] = FIGURE1_SIZES,
) -> dict[str, list[tuple[int, float]]]:
    """Both Figure 1 series as ``{label: [(size, fo4), ...]}``."""
    return {
        "single_ported": [(s, single_ported_access_fo4(s)) for s in sizes],
        "eight_way_banked": [(s, banked_access_fo4(s)) for s in sizes],
    }
