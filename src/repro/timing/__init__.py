"""Cache timing substrate: FO4 units, cacti-style access times, pipelining.

This subpackage reproduces section 2 of the paper: the technology model
(FO4 delays in a 0.5 µm process), the modified-cacti SRAM access-time
model behind Figure 1, and the pipelining arithmetic that decides how
large a cache fits in 1-3 cycles at a given processor cycle time.
"""

from repro.timing.cacti import (
    FIGURE1_SIZES,
    AccessTimeResult,
    ArrayOrganization,
    CacheGeometryError,
    access_time,
    banked_access_fo4,
    duplicate_access_fo4,
    figure1_curves,
    single_ported_access_fo4,
)
from repro.timing.pipelining import (
    MAX_PIPELINE_DEPTH,
    CacheFit,
    design_points,
    fits_in_cycles,
    max_cache_size,
    pipelined_access_fo4,
    required_depth,
)
from repro.timing.process import (
    CHIP_TO_L2_BANDWIDTH,
    FO4_NS,
    L2_ACCESS_NS,
    L2_TO_MEMORY_BANDWIDTH,
    LATCH_OVERHEAD_FO4,
    MEMORY_ACCESS_NS,
    REFERENCE_CLOCK_MHZ,
    REFERENCE_CYCLE_FO4,
    ProcessParameters,
    clock_mhz,
    fo4_to_ns,
    latency_in_cycles,
    ns_to_fo4,
)

__all__ = [
    "FIGURE1_SIZES",
    "AccessTimeResult",
    "ArrayOrganization",
    "CacheGeometryError",
    "access_time",
    "banked_access_fo4",
    "duplicate_access_fo4",
    "figure1_curves",
    "single_ported_access_fo4",
    "MAX_PIPELINE_DEPTH",
    "CacheFit",
    "design_points",
    "fits_in_cycles",
    "max_cache_size",
    "pipelined_access_fo4",
    "required_depth",
    "CHIP_TO_L2_BANDWIDTH",
    "FO4_NS",
    "L2_ACCESS_NS",
    "L2_TO_MEMORY_BANDWIDTH",
    "LATCH_OVERHEAD_FO4",
    "MEMORY_ACCESS_NS",
    "REFERENCE_CLOCK_MHZ",
    "REFERENCE_CYCLE_FO4",
    "ProcessParameters",
    "clock_mhz",
    "fo4_to_ns",
    "latency_in_cycles",
    "ns_to_fo4",
]
