"""Process technology constants for the 0.5 µm CMOS process modeled by cacti.

The paper uses the fan-out-of-four (FO4) inverter delay as a technology
independent unit of time [Horo92] and anchors it with two facts:

* a processor whose critical path is a single-ported, single-cycle 8 KB
  primary data cache has a cycle time of 25 FO4 [Horo96], and
* that processor runs at 200 MHz (section 3.1), i.e. a 5 ns cycle.

Together these fix 1 FO4 = 0.2 ns in the 0.5 µm process, which is the
conversion used throughout this package (and lets the fixed 50 ns L2 and
300 ns memory latencies of Figure 9 be re-expressed in cycles for any
processor cycle time).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Seconds per FO4 inverter delay in the modeled 0.5 µm process.
FO4_NS: float = 0.2

#: The reference processor cycle time (section 3.1): 25 FO4 == 5 ns == 200 MHz.
REFERENCE_CYCLE_FO4: float = 25.0
REFERENCE_CLOCK_MHZ: float = 200.0

#: Pipeline latch insertion delay (section 2.2): "Pipelining requires the
#: addition of a latch with a delay of 1.5 FO4".
LATCH_OVERHEAD_FO4: float = 1.5

#: Fixed backside latencies from section 3.1, in nanoseconds.  At the
#: reference 200 MHz clock they equal 10 and 60 cycles respectively.
L2_ACCESS_NS: float = 50.0
MEMORY_ACCESS_NS: float = 300.0

#: Peak bus bandwidths from section 3.1, in bytes per second.
CHIP_TO_L2_BANDWIDTH: float = 2.5e9
L2_TO_MEMORY_BANDWIDTH: float = 1.6e9


def ns_to_fo4(nanoseconds: float) -> float:
    """Convert a delay in nanoseconds to FO4 units."""
    return nanoseconds / FO4_NS


def fo4_to_ns(fo4: float) -> float:
    """Convert a delay in FO4 units to nanoseconds."""
    return fo4 * FO4_NS


def clock_mhz(cycle_time_fo4: float) -> float:
    """Clock frequency in MHz for a given cycle time in FO4."""
    if cycle_time_fo4 <= 0:
        raise ValueError(f"cycle time must be positive, got {cycle_time_fo4}")
    return 1e3 / fo4_to_ns(cycle_time_fo4)


def latency_in_cycles(nanoseconds: float, cycle_time_fo4: float) -> int:
    """Round a fixed physical latency to whole cycles of the given clock.

    Used to scale the L2 (50 ns) and main-memory (300 ns) latencies when
    the processor cycle time changes (Figure 9): a 10 FO4 processor sees
    a 25-cycle L2, the reference 25 FO4 processor sees 10 cycles.
    """
    if cycle_time_fo4 <= 0:
        raise ValueError(f"cycle time must be positive, got {cycle_time_fo4}")
    cycles = round(nanoseconds / fo4_to_ns(cycle_time_fo4))
    return max(1, cycles)


@dataclass(frozen=True)
class ProcessParameters:
    """RC-style delay coefficients for the analytical SRAM model.

    The coefficients are loosely derived from the Wilton-Jouppi cacti
    model for a 0.5 µm process; their absolute scale is removed by the
    anchor calibration in :mod:`repro.timing.cacti`, so only the relative
    growth of each component with array geometry matters.
    All times are in nanoseconds.
    """

    decoder_base_ns: float = 0.40
    decoder_per_bit_ns: float = 0.070  # per log2(rows) of decode depth
    wordline_base_ns: float = 0.10
    wordline_per_column_ns: float = 0.0015
    bitline_base_ns: float = 0.20
    bitline_per_row_ns: float = 0.0025
    sense_amp_ns: float = 0.30
    comparator_base_ns: float = 0.25
    comparator_per_way_ns: float = 0.050  # per log2(associativity)
    output_driver_ns: float = 0.30
    # Wire delay to route data from a sub-array to the cache edge grows
    # with the physical extent of the cache (~ sqrt of its area).
    routing_per_sqrt_kb_ns: float = 0.020
    # Extra wiring needed to interconnect independently addressed banks
    # (section 2.1: banking "increases ... the wire delay").
    bank_wiring_per_sqrt_bank_ns: float = 0.25


DEFAULT_PROCESS = ProcessParameters()
