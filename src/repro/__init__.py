"""repro -- reproduction of "Designing High Bandwidth On-Chip Caches"
(Wilson & Olukotun, ISCA 1997).

The package layers, bottom to top:

* :mod:`repro.timing` -- FO4 units and the cacti-style SRAM access-time
  model (Figure 1);
* :mod:`repro.memory` -- the on-chip memory system: multi-ported /
  banked / duplicate caches, pipelined hits, line buffer, MSHRs, L2,
  buses, and the on-chip DRAM cache;
* :mod:`repro.cpu` -- the four-issue dynamic superscalar core;
* :mod:`repro.workloads` -- synthetic stand-ins for the nine SimOS/SPEC95
  benchmarks;
* :mod:`repro.core` -- the design-space study: organizations, experiment
  driver, and per-figure reproduction entry points.

Quick start::

    from repro.core import duplicate, run_experiment
    result = run_experiment(duplicate(32 * 1024, line_buffer=True), "gcc")
    print(result.summary())
"""

from repro.core import (
    CacheOrganization,
    ExperimentSettings,
    banked,
    dram_cache,
    duplicate,
    ideal_ports,
    run_experiment,
)
from repro.cpu import ProcessorConfig, SimulationResult
from repro.memory import MemoryConfig, MemorySystem
from repro.workloads import BENCHMARKS, benchmark

__version__ = "1.0.0"

__all__ = [
    "CacheOrganization",
    "ExperimentSettings",
    "banked",
    "dram_cache",
    "duplicate",
    "ideal_ports",
    "run_experiment",
    "ProcessorConfig",
    "SimulationResult",
    "MemoryConfig",
    "MemorySystem",
    "BENCHMARKS",
    "benchmark",
    "__version__",
]
