"""The nine benchmarks (Tables 1 and 2) as synthetic workload specs.

Three groups, three benchmarks each, exactly as in the paper:

* SPECint95: gcc, li, compress -- small working sets, incremental
  miss-rate decline, low ILP;
* SPECfp95: tomcatv, su2cor, apsi -- large arrays swept regularly,
  radical miss-rate drops at specific cache sizes, high ILP;
* multiprogramming (SimOS): pmake, database, VCS -- integer-style codes
  with much larger aggregate working sets, OS kernel activity, and
  context switching.

Instruction mixes (load/store percentages) and kernel/user/idle splits
are taken directly from Table 2.  Region mixtures are calibrated so the
misses-per-instruction curves have the magnitudes and shapes of
Figure 3.  Idle time (database spends 64.6 % waiting on I/O) is *not*
simulated -- the paper excludes idle-mode IPC from its measurements --
but is carried in the spec for Table 2 reporting.
"""

from __future__ import annotations

from repro.workloads.branches import (
    FLOAT_BRANCHES,
    INTEGER_BRANCHES,
    MULTIPROG_BRANCHES,
)
from repro.workloads.deps import FLOAT_ILP, INTEGER_ILP, MULTIPROG_ILP
from repro.workloads.generator import WorkloadSpec
from repro.workloads.regions import Region

KB = 1024

# ---------------------------------------------------------------------------
# SPECint95
# ---------------------------------------------------------------------------

GCC = WorkloadSpec(
    name="gcc",
    description="Builds SPARC code",
    group="SPECint95",
    load_fraction=0.281,
    store_fraction=0.122,
    kernel_fraction=0.100,
    idle_fraction=0.0,
    user_regions=(
        Region("stack", 2 * KB, 0.40, "hot", hot_fraction=0.5, burst_mean=8),
        Region("globals", 12 * KB, 0.30, "hot", hot_fraction=0.25, burst_mean=8),
        Region("heap", 64 * KB, 0.24, "hot", hot_fraction=0.15, burst_mean=6),
        Region("cold-heap", 256 * KB, 0.06, "random", burst_mean=4),
    ),
    kernel_regions=(
        Region("kstack", 4 * KB, 0.4, "hot", hot_fraction=0.5),
        Region("kdata", 64 * KB, 0.6, "hot", hot_fraction=0.2),
    ),
    ilp=INTEGER_ILP,
    branches=INTEGER_BRANCHES,
)

LI = WorkloadSpec(
    name="li",
    description="LISP interpreter",
    group="SPECint95",
    load_fraction=0.332,
    store_fraction=0.130,
    kernel_fraction=0.002,
    idle_fraction=0.0,
    user_regions=(
        Region("stack", 2 * KB, 0.45, "hot", hot_fraction=0.5, burst_mean=12),
        Region("cons-heap", 16 * KB, 0.42, "hot", hot_fraction=0.25, burst_mean=10),
        Region("cold-heap", 64 * KB, 0.13, "random", burst_mean=8),
    ),
    kernel_regions=(Region("kdata", 32 * KB, 1.0, "hot"),),
    ilp=INTEGER_ILP,
    branches=INTEGER_BRANCHES,
)

COMPRESS = WorkloadSpec(
    name="compress",
    description="Compresses and decompresses file in memory",
    group="SPECint95",
    load_fraction=0.345,
    store_fraction=0.080,
    kernel_fraction=0.084,
    idle_fraction=0.0,
    user_regions=(
        Region("stack", 2 * KB, 0.34, "hot", hot_fraction=0.5, burst_mean=8),
        Region("hash-table", 48 * KB, 0.42, "hot", hot_fraction=0.3, burst_mean=8),
        Region("io-buffers", 128 * KB, 0.24, "sequential", stride=8),
    ),
    kernel_regions=(
        Region("kstack", 4 * KB, 0.4, "hot", hot_fraction=0.5),
        Region("kbuf", 64 * KB, 0.6, "hot", hot_fraction=0.2),
    ),
    ilp=INTEGER_ILP,
    branches=INTEGER_BRANCHES,
)

# ---------------------------------------------------------------------------
# SPECfp95
# ---------------------------------------------------------------------------

TOMCATV = WorkloadSpec(
    name="tomcatv",
    description="Mesh-generation program",
    group="SPECfp95",
    load_fraction=0.269,
    store_fraction=0.085,
    kernel_fraction=0.004,
    idle_fraction=0.0,
    user_regions=(
        Region("mesh-x", 52 * KB, 0.13, "sequential", stride=8),
        Region("mesh-y", 52 * KB, 0.13, "sequential", stride=8),
        Region("rhs", 52 * KB, 0.13, "sequential", stride=8),
        Region("residual", 52 * KB, 0.13, "sequential", stride=8),
        Region("scalars", 4 * KB, 0.48, "hot", hot_fraction=0.5, burst_mean=8),
    ),
    kernel_regions=(Region("kdata", 32 * KB, 1.0, "hot"),),
    ilp=FLOAT_ILP,
    branches=FLOAT_BRANCHES,
    fp_fraction=0.75,
)

SU2COR = WorkloadSpec(
    name="su2cor",
    description="Quantum physics; Monte Carlo simulation",
    group="SPECfp95",
    load_fraction=0.280,
    store_fraction=0.063,
    kernel_fraction=0.005,
    idle_fraction=0.0,
    user_regions=(
        Region("lattice-a", 48 * KB, 0.16, "sequential", stride=8),
        Region("lattice-b", 48 * KB, 0.16, "sequential", stride=8),
        Region("propagator", 16 * KB, 0.12, "sequential", stride=8),
        Region("scalars", 4 * KB, 0.56, "hot", hot_fraction=0.5, burst_mean=8),
    ),
    kernel_regions=(Region("kdata", 32 * KB, 1.0, "hot"),),
    ilp=FLOAT_ILP,
    branches=FLOAT_BRANCHES,
    fp_fraction=0.7,
)

APSI = WorkloadSpec(
    name="apsi",
    description=(
        "Solves problems regarding temperature, wind, velocity, and "
        "distribution of pollutants"
    ),
    group="SPECfp95",
    load_fraction=0.400,
    store_fraction=0.117,
    kernel_fraction=0.022,
    idle_fraction=0.0,
    user_regions=(
        Region("field-t", 20 * KB, 0.19, "sequential", stride=8),
        Region("field-w", 20 * KB, 0.19, "sequential", stride=8),
        Region("pollutant", 16 * KB, 0.17, "sequential", stride=8),
        Region("scalars", 4 * KB, 0.45, "hot", hot_fraction=0.5),
    ),
    kernel_regions=(Region("kdata", 48 * KB, 1.0, "hot"),),
    ilp=FLOAT_ILP,
    branches=FLOAT_BRANCHES,
    fp_fraction=0.7,
)

# ---------------------------------------------------------------------------
# SimOS multiprogramming
# ---------------------------------------------------------------------------

PMAKE = WorkloadSpec(
    name="pmake",
    description="Two compilation processes for 17 files",
    group="multiprogramming",
    load_fraction=0.258,
    store_fraction=0.119,
    kernel_fraction=0.089,
    idle_fraction=0.051,
    user_regions=(
        Region("stack", 2 * KB, 0.34, "hot", hot_fraction=0.5, burst_mean=8),
        Region("globals", 24 * KB, 0.28, "hot", hot_fraction=0.25, burst_mean=7),
        Region("heap", 128 * KB, 0.28, "hot", hot_fraction=0.15, burst_mean=5),
        Region("cold-heap", 384 * KB, 0.10, "random", burst_mean=4),
    ),
    kernel_regions=(
        Region("kstack", 4 * KB, 0.3, "hot", hot_fraction=0.5),
        Region("kcode-data", 96 * KB, 0.5, "hot", hot_fraction=0.2),
        Region("buffer-cache", 192 * KB, 0.2, "random", burst_mean=4),
    ),
    ilp=MULTIPROG_ILP,
    branches=MULTIPROG_BRANCHES,
    processes=2,
    context_switch_interval=3000,
)

DATABASE = WorkloadSpec(
    name="database",
    description=(
        "Sybase SQL server using bank/customer transaction processing "
        "modeled after the TPC-B transaction processing benchmark"
    ),
    group="multiprogramming",
    load_fraction=0.248,
    store_fraction=0.136,
    kernel_fraction=0.52,  # 18.4 % of total; 52 % of non-idle time
    idle_fraction=0.646,
    user_regions=(
        Region("stack", 2 * KB, 0.24, "hot", hot_fraction=0.5, burst_mean=8),
        Region("row-cache", 96 * KB, 0.26, "hot", hot_fraction=0.2, burst_mean=5),
        Region("buffer-pool", 640 * KB, 0.32, "random", burst_mean=3),
        Region("index-pages", 320 * KB, 0.18, "hot", hot_fraction=0.1, burst_mean=4),
    ),
    kernel_regions=(
        Region("kstack", 4 * KB, 0.25, "hot", hot_fraction=0.5),
        Region("kdata", 128 * KB, 0.40, "hot", hot_fraction=0.2),
        Region("net-buffers", 256 * KB, 0.35, "random", burst_mean=4),
    ),
    ilp=MULTIPROG_ILP,
    branches=MULTIPROG_BRANCHES,
    processes=3,
    context_switch_interval=1500,
)

VCS = WorkloadSpec(
    name="VCS",
    description=(
        "Simulates the FLASH MAGIC chip using the Chronologics VCS simulator"
    ),
    group="multiprogramming",
    load_fraction=0.257,
    store_fraction=0.151,
    kernel_fraction=0.099,
    idle_fraction=0.0,
    user_regions=(
        Region("stack", 2 * KB, 0.26, "hot", hot_fraction=0.5, burst_mean=8),
        Region("netlist", 320 * KB, 0.34, "hot", hot_fraction=0.12, burst_mean=5),
        Region("event-queue", 64 * KB, 0.24, "hot", hot_fraction=0.25, burst_mean=6),
        Region("value-table", 256 * KB, 0.16, "random", burst_mean=4),
    ),
    kernel_regions=(
        Region("kstack", 4 * KB, 0.4, "hot", hot_fraction=0.5),
        Region("kdata", 96 * KB, 0.6, "hot", hot_fraction=0.2),
    ),
    ilp=MULTIPROG_ILP,
    branches=MULTIPROG_BRANCHES,
    processes=2,
    context_switch_interval=2000,
)

# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

BENCHMARKS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (GCC, LI, COMPRESS, TOMCATV, SU2COR, APSI, PMAKE, DATABASE, VCS)
}

#: The representative benchmark of each group used in Figures 4-9.
REPRESENTATIVES = ("gcc", "tomcatv", "database")

GROUPS = ("SPECint95", "SPECfp95", "multiprogramming")


def benchmark(name: str) -> WorkloadSpec:
    """Look up a benchmark spec by its paper name (case-insensitive)."""
    for key, spec in BENCHMARKS.items():
        if key.lower() == name.lower():
            return spec
    raise KeyError(
        f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}"
    )


def by_group(group: str) -> list[WorkloadSpec]:
    specs = [spec for spec in BENCHMARKS.values() if spec.group == group]
    if not specs:
        raise KeyError(f"unknown group {group!r}; choose from {GROUPS}")
    return specs
