"""Branch-behavior models for synthetic workloads.

Two populations of static branches are modeled:

* **loop branches** -- taken for ``trip_count - 1`` iterations, then not
  taken once; a two-bit predictor gets ~``1/trip_count`` of them wrong.
  Floating-point codes are dominated by these with long trip counts.
* **data-dependent branches** -- taken with a per-branch bias; the
  predictor learns the bias, mispredicting at roughly ``min(p, 1-p)``.
  Integer codes carry many weakly biased data branches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cpu.isa import MicroOp, branch as make_branch


@dataclass(frozen=True)
class BranchProfile:
    """Parameterizes branch generation for one workload."""

    frequency: float  #: fraction of all instructions that are branches
    loop_fraction: float  #: share of branch *executions* from loops
    mean_trip_count: int  #: average loop iterations between exits
    data_branch_count: int = 16  #: static data-dependent branch sites
    data_taken_bias: float = 0.7  #: average taken probability
    bias_spread: float = 0.25  #: per-site bias jitter

    def __post_init__(self) -> None:
        if not 0.0 <= self.frequency < 1.0:
            raise ValueError("branch frequency must be in [0, 1)")
        if not 0.0 <= self.loop_fraction <= 1.0:
            raise ValueError("loop_fraction must be a probability")
        if self.mean_trip_count < 2:
            raise ValueError("mean_trip_count must be >= 2")
        if self.data_branch_count < 1:
            raise ValueError("need at least one data branch site")


#: Integer codes: ~1 branch in 6, modest loops, noisy data branches.
INTEGER_BRANCHES = BranchProfile(
    frequency=0.16,
    loop_fraction=0.78,
    mean_trip_count=24,
    data_branch_count=8,
    data_taken_bias=0.93,
    bias_spread=0.03,
)

#: Floating-point codes: rare, highly predictable loop branches.
FLOAT_BRANCHES = BranchProfile(
    frequency=0.04,
    loop_fraction=0.95,
    mean_trip_count=96,
    data_branch_count=4,
    data_taken_bias=0.8,
    bias_spread=0.1,
)

#: Multiprogrammed/OS-heavy codes: branchy, less predictable.
MULTIPROG_BRANCHES = BranchProfile(
    frequency=0.17,
    loop_fraction=0.70,
    mean_trip_count=16,
    data_branch_count=12,
    data_taken_bias=0.90,
    bias_spread=0.05,
)


class BranchModel:
    """Stateful generator of branch micro-ops for one address space."""

    def __init__(
        self,
        profile: BranchProfile,
        rng: random.Random,
        pc_base: int = 0x1000,
    ):
        self.profile = profile
        self._rng = rng
        self._loop_pc = pc_base
        self._loop_left = self._new_trip_count()
        self._data_sites = []
        for i in range(profile.data_branch_count):
            bias = profile.data_taken_bias + rng.uniform(
                -profile.bias_spread, profile.bias_spread
            )
            self._data_sites.append(
                (pc_base + 0x100 + 4 * i, min(0.95, max(0.05, bias)))
            )

    def _new_trip_count(self) -> int:
        mean = self.profile.mean_trip_count
        return max(2, int(self._rng.expovariate(1.0 / mean)) + 1)

    def next_branch(self, srcs: tuple[int, ...] = ()) -> MicroOp:
        if self._rng.random() < self.profile.loop_fraction:
            self._loop_left -= 1
            if self._loop_left <= 0:
                self._loop_left = self._new_trip_count()
                return make_branch(self._loop_pc, taken=False, srcs=srcs)
            return make_branch(self._loop_pc, taken=True, srcs=srcs)
        pc, bias = self._data_sites[
            self._rng.randrange(len(self._data_sites))
        ]
        return make_branch(pc, taken=self._rng.random() < bias, srcs=srcs)
