"""Instruction-level-parallelism profiles: parallel dependence chains.

Section 4.1 hinges on the ILP difference between benchmark classes: the
dynamic superscalar processor hides multi-cycle cache hits well for
floating-point codes ("the large amount of ILP available") and poorly
for integer codes, whose dependence chains run *through* loads.

We model a workload's dataflow as a set of **parallel chains**.  Each
instruction joins one chain and (usually) depends on that chain's
previous instruction -- so a chain containing a load serializes on the
load's latency, exactly the load-use behavior that makes integer codes
sensitive to cache hit time.  The number of live chains sets the ILP
ceiling:

* integer codes: ~3 chains with frequent load-address dependences
  (pointer chasing) -- modest ILP, strong hit-time sensitivity;
* floating-point codes: many independent chains (unrolled vector
  loops), loads addressed by induction variables -- ILP covers the
  issue width and hides multi-cycle hits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.cpu.isa import MAX_DEP_DISTANCE


@dataclass(frozen=True)
class IlpProfile:
    """Parameterizes dependence-chain generation for one workload."""

    name: str
    chains: int  #: parallel dependence chains (the ILP ceiling)
    dep_probability: float  #: P(a compute/branch op extends its chain)
    cross_chain_probability: float  #: P(second operand from another chain)
    #: P(a load/store's *address* depends on its chain -- pointer chasing;
    #: independent addresses model induction variables).
    load_address_dep_probability: float

    def __post_init__(self) -> None:
        if self.chains < 1:
            raise ValueError("need at least one chain")
        for name in (
            "dep_probability",
            "cross_chain_probability",
            "load_address_dep_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")


#: Tight pointer-chasing chains: typical compiled integer code.
INTEGER_ILP = IlpProfile(
    name="integer",
    chains=3,
    dep_probability=1.0,
    cross_chain_probability=0.10,
    load_address_dep_probability=0.90,
)

#: Many independent strands: vectorizable floating-point loops.
FLOAT_ILP = IlpProfile(
    name="float",
    chains=14,
    dep_probability=0.70,
    cross_chain_probability=0.10,
    load_address_dep_probability=0.05,
)

#: Integer-like with OS noise; slightly fewer usable chains.
MULTIPROG_ILP = IlpProfile(
    name="multiprog",
    chains=4,
    dep_probability=1.0,
    cross_chain_probability=0.10,
    load_address_dep_probability=0.75,
)


class DependenceTracker:
    """Per-address-space chain state; produces source-operand distances.

    Every generated instruction is assigned to a chain and becomes that
    chain's new tail, so later chain members transitively wait on it.
    Distances beyond the ISA's dependence window fall back to
    architectural state (no source) -- this naturally restarts chains
    that have gone cold, e.g. across kernel bursts.
    """

    def __init__(self, profile: IlpProfile, rng: random.Random):
        self.profile = profile
        self._rng = rng
        self._chain_tail: list[int | None] = [None] * profile.chains

    def next_srcs(self, seq: int, *, address: bool = False) -> tuple[int, ...]:
        """Operand distances for the instruction at *global* index ``seq``.

        Distances are relative to the dynamic instruction stream the CPU
        sees, so ``seq`` must be the global instruction counter (branches,
        kernel bursts, and other address spaces all advance it).
        ``address=True`` uses the pointer-chasing probability (for
        load/store address operands) instead of the compute one.
        """
        profile = self.profile
        rng = self._rng
        chain = rng.randrange(profile.chains)
        join_probability = (
            profile.load_address_dep_probability
            if address
            else profile.dep_probability
        )
        srcs: tuple[int, ...] = ()
        if rng.random() < join_probability:
            tail = self._chain_tail[chain]
            if tail is not None and 1 <= seq - tail <= MAX_DEP_DISTANCE:
                srcs = (seq - tail,)
                if rng.random() < profile.cross_chain_probability:
                    other_chain = (chain + 1) % profile.chains
                    other = self._chain_tail[other_chain]
                    if (
                        other is not None
                        and 1 <= seq - other <= MAX_DEP_DISTANCE
                        and seq - other != srcs[0]
                    ):
                        srcs = (srcs[0], seq - other)
        self._chain_tail[chain] = seq
        return srcs
