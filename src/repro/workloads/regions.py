"""Address-region mixture models for synthetic workloads.

We cannot run SPEC95 binaries under SimOS, so each benchmark's memory
behavior is modeled as a weighted mixture of *regions*, each with a size
and an access pattern.  The three patterns cover the behaviors the paper
distinguishes in section 4 (Figure 3):

* ``sequential`` -- unit-stride sweeps over an array, wrapping around.
  Streaming through arrays much larger than the cache misses once per
  line; once the cache holds the whole array the sweeps hit.  Mixtures
  of a few large arrays give the floating-point benchmarks' "radical
  drops in miss rates at specific cache sizes".
* ``hot`` -- references concentrated on a hot subset of the region with
  a uniform cold tail.  Mixtures of nested hot regions give the integer
  benchmarks' incremental miss-rate decline.
* ``random`` -- uniform references over the region (hash tables, heaps).

Region base addresses are laid out non-overlapping inside an address
space; multiprogrammed workloads instantiate one space per process at
disjoint offsets plus a shared kernel space.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_PATTERNS = ("sequential", "hot", "random")

#: Guard gap between regions so strided sweeps never cross regions.
_REGION_ALIGN = 4096


@dataclass(frozen=True)
class Region:
    """One component of a workload's memory footprint."""

    name: str
    size_bytes: int
    weight: float  #: share of data references landing in this region
    pattern: str = "hot"
    stride: int = 8  #: bytes between consecutive sequential accesses
    hot_fraction: float = 0.1  #: leading fraction forming the hot subset
    hot_weight: float = 0.9  #: probability a reference stays hot
    #: mean references per spatial burst (hot/random patterns): a burst
    #: stays within one cache line, modeling field/stack-slot locality.
    burst_mean: float = 6.0

    def __post_init__(self) -> None:
        if self.pattern not in _PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.burst_mean < 1.0:
            raise ValueError("burst_mean must be >= 1")
        if self.size_bytes <= 0:
            raise ValueError(f"region size must be positive: {self.size_bytes}")
        if self.weight < 0:
            raise ValueError(f"region weight must be >= 0: {self.weight}")
        if self.pattern == "sequential" and self.stride <= 0:
            raise ValueError("sequential regions need a positive stride")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= self.hot_weight <= 1.0:
            raise ValueError("hot_weight must be in [0, 1]")


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


class RegionAddressModel:
    """Draws data addresses from a mixture of regions.

    Deterministic given the ``random.Random`` instance supplied; all of
    a workload's randomness flows from one seeded generator.
    """

    def __init__(
        self,
        regions: tuple[Region, ...],
        rng: random.Random,
        base_offset: int = 0,
    ):
        if not regions:
            raise ValueError("need at least one region")
        total = sum(region.weight for region in regions)
        if total <= 0:
            raise ValueError("region weights must sum to a positive value")
        self.regions = regions
        self._rng = rng
        # Cumulative weights for fast mixture sampling.
        self._cumulative: list[float] = []
        acc = 0.0
        for region in regions:
            acc += region.weight / total
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0
        # Non-overlapping placement.
        self._bases: list[int] = []
        cursor = base_offset
        for region in regions:
            cursor = _align(cursor, _REGION_ALIGN)
            self._bases.append(cursor)
            cursor += _align(region.size_bytes, _REGION_ALIGN)
        self.footprint_bytes = cursor - base_offset
        self._cursors = [0] * len(regions)  # sequential sweep positions
        # Spatial-burst state per region: (references left, line base).
        self._burst_left = [0] * len(regions)
        self._burst_base = [0] * len(regions)

    def next_address(self) -> int:
        """One data address, 8-byte aligned."""
        point = self._rng.random()
        index = self._pick(point)
        region = self.regions[index]
        base = self._bases[index]
        if region.pattern == "sequential":
            offset = self._cursors[index]
            self._cursors[index] = (offset + region.stride) % region.size_bytes
            return (base + offset) & ~7
        # hot/random: spatial bursts that stay within one 32 B line.
        if self._burst_left[index] > 0:
            self._burst_left[index] -= 1
            offset = self._burst_base[index] + self._rng.randrange(0, 32, 8)
        else:
            if region.pattern == "hot" and self._rng.random() < region.hot_weight:
                limit = max(32, int(region.size_bytes * region.hot_fraction))
            else:
                limit = region.size_bytes
            offset = self._rng.randrange(0, limit, 8) & ~31  # line aligned
            self._burst_base[index] = offset
            self._burst_left[index] = max(
                0, int(self._rng.expovariate(1.0 / region.burst_mean))
            )
        return (base + offset) & ~7

    def _pick(self, point: float) -> int:
        # Linear scan: region lists are short (< 10 entries).
        for index, bound in enumerate(self._cumulative):
            if point <= bound:
                return index
        return len(self._cumulative) - 1  # pragma: no cover - fp safety

    def all_lines(self, line_bytes: int = 32) -> list[int]:
        """Every cache line this model can ever touch (footprint lines).

        Used to pre-fill second-level state to its long-run steady
        state before a short measured simulation window.
        """
        lines: list[int] = []
        for first, last in self.line_spans(line_bytes):
            lines.extend(range(first, last + 1))
        return lines

    def line_spans(self, line_bytes: int = 32) -> list[tuple[int, int]]:
        """Per-region ``(first_line, last_line)`` inclusive spans.

        The span form lets callers vectorize footprint enumeration
        (see :meth:`WorkloadGenerator.footprint_lines`) without this
        model depending on numpy itself.
        """
        return [
            (base // line_bytes, (base + region.size_bytes - 1) // line_bytes)
            for region, base in zip(self.regions, self._bases)
        ]

    def total_weight_footprint(self) -> int:
        """Weighted working-set size estimate in bytes."""
        total = sum(r.weight for r in self.regions)
        return int(
            sum(r.size_bytes * (r.weight / total) for r in self.regions)
        )
