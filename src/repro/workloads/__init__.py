"""Synthetic workload substrate standing in for SimOS + SPEC95.

See :mod:`repro.workloads.catalog` for the nine benchmarks and
``DESIGN.md`` for the substitution rationale.
"""

from repro.workloads.branches import (
    FLOAT_BRANCHES,
    INTEGER_BRANCHES,
    MULTIPROG_BRANCHES,
    BranchModel,
    BranchProfile,
)
from repro.workloads.catalog import (
    BENCHMARKS,
    GROUPS,
    REPRESENTATIVES,
    benchmark,
    by_group,
)
from repro.workloads.deps import (
    FLOAT_ILP,
    INTEGER_ILP,
    MULTIPROG_ILP,
    DependenceTracker,
    IlpProfile,
)
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec, trace
from repro.workloads.traces import (
    TraceProfile,
    capture,
    load_trace,
    profile_trace,
    replay,
    save_trace,
)
from repro.workloads.regions import Region, RegionAddressModel

__all__ = [
    "FLOAT_BRANCHES",
    "INTEGER_BRANCHES",
    "MULTIPROG_BRANCHES",
    "BranchModel",
    "BranchProfile",
    "BENCHMARKS",
    "GROUPS",
    "REPRESENTATIVES",
    "benchmark",
    "by_group",
    "FLOAT_ILP",
    "INTEGER_ILP",
    "MULTIPROG_ILP",
    "DependenceTracker",
    "IlpProfile",
    "WorkloadGenerator",
    "WorkloadSpec",
    "trace",
    "Region",
    "RegionAddressModel",
    "TraceProfile",
    "capture",
    "load_trace",
    "profile_trace",
    "replay",
    "save_trace",
]
