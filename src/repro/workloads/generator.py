"""Synthetic benchmark trace generation.

A :class:`WorkloadSpec` bundles everything that characterizes one of the
paper's nine benchmarks: instruction mix (Table 2's load/store
percentages), kernel/user split, memory regions (Figure 3's working-set
shape), ILP profile, and branch behavior.  A :class:`WorkloadGenerator`
turns a spec plus a seed into a deterministic infinite micro-op stream.

Operating-system behavior is modeled structurally: execution alternates
between user phases and kernel bursts (with their own address space and
branch sites) in the ratio given by ``kernel_fraction``, and
multiprogrammed workloads round-robin between per-process address
spaces every ``context_switch_interval`` instructions, which is what
gives them their large aggregate working sets.
"""

from __future__ import annotations

import random
import zlib
from array import array
from dataclasses import dataclass, field
from typing import Iterator

try:  # optional: vectorizes footprint math; generation stays pure Python
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

from repro.cpu.isa import MicroOp, Op
from repro.workloads.branches import BranchModel, BranchProfile
from repro.workloads.deps import DependenceTracker, IlpProfile
from repro.workloads.regions import Region, RegionAddressModel

#: Offset between per-process address spaces (and the kernel space).
_SPACE_STRIDE = 1 << 26  # 64 MB
_KERNEL_SPACE_INDEX = 31
#: Length of one kernel burst (system call / interrupt service), instrs.
_KERNEL_BURST = 400

_INT_COMPUTE = ((Op.IALU, 0.92), (Op.IMUL, 0.06), (Op.IDIV, 0.02))
_FP_COMPUTE = ((Op.FADD, 0.50), (Op.FMUL, 0.38), (Op.FDIV, 0.10), (Op.FSQRT, 0.02))


@dataclass(frozen=True)
class WorkloadSpec:
    """Full characterization of one synthetic benchmark."""

    name: str
    description: str
    group: str  #: "SPECint95" | "SPECfp95" | "multiprogramming"
    load_fraction: float
    store_fraction: float
    kernel_fraction: float  #: share of *non-idle* time in kernel mode
    idle_fraction: float  #: reported for Table 2; idle is not simulated
    user_regions: tuple[Region, ...]
    kernel_regions: tuple[Region, ...] = ()
    ilp: IlpProfile = field(default=None)  # type: ignore[assignment]
    branches: BranchProfile = field(default=None)  # type: ignore[assignment]
    fp_fraction: float = 0.0  #: share of compute ops that are FP
    processes: int = 1
    context_switch_interval: int = 0  #: 0 = single process, no switching

    def __post_init__(self) -> None:
        if self.ilp is None or self.branches is None:
            raise ValueError(f"{self.name}: ilp and branches profiles required")
        refs = self.load_fraction + self.store_fraction
        if not 0.0 < refs < 0.9:
            raise ValueError(f"{self.name}: implausible reference fraction {refs}")
        if refs + self.branches.frequency >= 1.0:
            raise ValueError(f"{self.name}: mix fractions exceed 1.0")
        if not 0.0 <= self.kernel_fraction < 1.0:
            raise ValueError(f"{self.name}: bad kernel fraction")
        if self.kernel_fraction > 0 and not self.kernel_regions:
            raise ValueError(f"{self.name}: kernel fraction without kernel regions")
        if self.processes < 1:
            raise ValueError(f"{self.name}: need at least one process")
        if self.processes > 1 and self.context_switch_interval <= 0:
            raise ValueError(f"{self.name}: multiprocess needs a switch interval")


class _Space:
    """One address space: memory regions, branch sites, dependence chains."""

    def __init__(
        self,
        regions: tuple[Region, ...],
        branches: BranchProfile,
        ilp: IlpProfile,
        rng: random.Random,
        index: int,
    ):
        self.memory = RegionAddressModel(
            regions, rng, base_offset=index * _SPACE_STRIDE
        )
        self.branches = BranchModel(
            branches, rng, pc_base=0x1000 + index * 0x10000
        )
        self.deps = DependenceTracker(ilp, rng)


class WorkloadGenerator:
    """Deterministic micro-op stream for one (spec, seed) pair."""

    def __init__(self, spec: WorkloadSpec, seed: int = 0):
        self.spec = spec
        # crc32, not hash(): str hashing is randomized per process
        # (PYTHONHASHSEED), which made "deterministic" streams differ
        # between runs.
        self._rng = random.Random(zlib.crc32(spec.name.encode()) ^ seed)
        self._user_spaces = [
            _Space(spec.user_regions, spec.branches, spec.ilp, self._rng, index)
            for index in range(spec.processes)
        ]
        self._kernel_space = (
            _Space(
                spec.kernel_regions,
                spec.branches,
                spec.ilp,
                self._rng,
                _KERNEL_SPACE_INDEX,
            )
            if spec.kernel_fraction > 0
            else None
        )
        # user run length between kernel bursts preserving kernel_fraction
        if spec.kernel_fraction > 0:
            self._user_run = max(
                1,
                round(_KERNEL_BURST * (1 - spec.kernel_fraction) / spec.kernel_fraction),
            )
        else:
            self._user_run = 0

    def instructions(self) -> Iterator[MicroOp]:
        """The infinite instruction stream."""
        spec = self.spec
        rng = self._rng
        p_load = spec.load_fraction
        p_store = p_load + spec.store_fraction
        p_branch = p_store + spec.branches.frequency
        process = 0
        since_switch = 0
        in_kernel = False
        phase_left = self._user_run if self._user_run else -1
        seq = 0  # global dynamic instruction index

        while True:
            # --- phase bookkeeping (kernel bursts, context switches) ---
            if self._kernel_space is not None:
                phase_left -= 1
                if phase_left <= 0:
                    in_kernel = not in_kernel
                    phase_left = _KERNEL_BURST if in_kernel else self._user_run
            if spec.context_switch_interval:
                since_switch += 1
                if since_switch >= spec.context_switch_interval:
                    since_switch = 0
                    process = (process + 1) % spec.processes
            space = (
                self._kernel_space
                if in_kernel and self._kernel_space is not None
                else self._user_spaces[process]
            )

            # --- instruction class ---
            point = rng.random()
            if point < p_load:
                yield MicroOp(
                    Op.LOAD,
                    space.deps.next_srcs(seq, address=True),
                    address=space.memory.next_address(),
                )
            elif point < p_store:
                yield MicroOp(
                    Op.STORE,
                    space.deps.next_srcs(seq, address=True),
                    address=space.memory.next_address(),
                )
            elif point < p_branch:
                # Branch conditions resolve quickly in real codes (compare
                # of a register already in flight); modeling them as
                # chain-free keeps mispredict resolution realistic instead
                # of serializing behind the whole chain backlog.
                yield space.branches.next_branch(())
            else:
                kernel_fp = 0.0 if in_kernel else spec.fp_fraction
                table = _FP_COMPUTE if rng.random() < kernel_fp else _INT_COMPUTE
                yield MicroOp(self._pick_op(table, rng), space.deps.next_srcs(seq))
            seq += 1

    @staticmethod
    def _pick_op(table: tuple[tuple[Op, float], ...], rng: random.Random) -> Op:
        point = rng.random()
        acc = 0.0
        for op, weight in table:
            acc += weight
            if point < acc:
                return op
        return table[0][0]

    def footprint_lines(self, line_bytes: int = 32) -> list[int]:
        """All cache lines the workload's regions span, across every
        address space (processes + kernel).  Feed to
        :meth:`repro.memory.hierarchy.MemorySystem.prefill_backside`.

        Pure span arithmetic over the region layout -- no randomness --
        so the multiprogrammed footprints (hundreds of thousands of
        lines) vectorize through numpy when available; the pure-Python
        fallback produces the identical list.
        """
        spaces = list(self._user_spaces)
        if self._kernel_space is not None:
            spaces.append(self._kernel_space)
        spans = [
            span
            for space in spaces
            for span in space.memory.line_spans(line_bytes)
        ]
        if _np is not None and spans:
            return _np.concatenate(
                [
                    _np.arange(first, last + 1, dtype=_np.int64)
                    for first, last in spans
                ]
            ).tolist()
        lines: list[int] = []
        for first, last in spans:
            lines.extend(range(first, last + 1))
        return lines

    def memory_references(self, instructions: int) -> list[tuple[bool, int]]:
        """The (is_store, address) reference stream of ``instructions``.

        Convenience for functional cache simulations (Figure 3): same
        stream the full trace would produce, already filtered.
        """
        refs: list[tuple[bool, int]] = []
        stream = self.instructions()
        for _ in range(instructions):
            mop = next(stream)
            if mop.is_memory:
                refs.append((mop.op is Op.STORE, mop.address))
        return refs

    def packed_references(self, instructions: int) -> array:
        """:meth:`memory_references`, packed one reference per word.

        Each entry is ``address << 1 | is_store``: an ``array('Q')`` is
        ~10x smaller than the tuple list, which is what lets the fast
        backend's trace cache hold several benchmarks' warm-up streams
        at once.  Consumes the generator state exactly like
        :meth:`memory_references` (same stream, same RNG draws).
        """
        refs = array("Q")
        append = refs.append
        stream = self.instructions()
        for _ in range(instructions):
            mop = next(stream)
            if mop.is_memory:
                append((mop.address << 1) | (mop.op is Op.STORE))
        return refs


def trace(spec: WorkloadSpec, seed: int = 0) -> Iterator[MicroOp]:
    """Shorthand: a fresh instruction stream for a spec."""
    return WorkloadGenerator(spec, seed).instructions()
