"""Trace capture, replay, and characterization utilities.

Workload generators are cheap, but some studies want the *same* dynamic
instruction stream replayed against many configurations, archived to
disk, or characterized before use.  This module provides:

* :func:`capture` / :func:`replay` -- materialize a finite trace and
  iterate it again (lists of micro-ops are directly replayable);
* :func:`save_trace` / :func:`load_trace` -- a compact, versioned,
  line-oriented text format (one micro-op per line) that round-trips
  exactly;
* :class:`TraceProfile` / :func:`profile_trace` -- measured mix,
  dependence, branch, and working-set characteristics of a trace,
  the quantities Tables 1-2 and Figure 3 are calibrated against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.cpu.isa import MicroOp, Op

FORMAT_VERSION = 1
_HEADER = f"# repro-trace v{FORMAT_VERSION}"


def capture(stream: Iterator[MicroOp], instructions: int) -> list[MicroOp]:
    """Materialize the next ``instructions`` micro-ops of a stream."""
    if instructions <= 0:
        raise ValueError("instructions must be positive")
    trace = list(itertools.islice(stream, instructions))
    return trace


def replay(trace: list[MicroOp]) -> Iterator[MicroOp]:
    """An iterator over a captured trace (fresh each call)."""
    return iter(trace)


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _encode(mop: MicroOp) -> str:
    srcs = ",".join(str(d) for d in mop.srcs) or "-"
    if mop.is_memory:
        return f"{mop.op.value} {srcs} {mop.address:x}"
    if mop.op is Op.BRANCH:
        return f"{mop.op.value} {srcs} {mop.pc:x} {int(mop.taken)}"
    return f"{mop.op.value} {srcs}"


def _decode(line: str) -> MicroOp:
    parts = line.split()
    op = Op(int(parts[0]))
    srcs = () if parts[1] == "-" else tuple(int(d) for d in parts[1].split(","))
    if op in (Op.LOAD, Op.STORE):
        return MicroOp(op, srcs, address=int(parts[2], 16))
    if op is Op.BRANCH:
        return MicroOp(op, srcs, pc=int(parts[2], 16), taken=parts[3] == "1")
    return MicroOp(op, srcs)


def save_trace(trace: Iterable[MicroOp], path: str | Path) -> int:
    """Write a trace to disk; returns the number of micro-ops written."""
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        handle.write(_HEADER + "\n")
        for mop in trace:
            handle.write(_encode(mop) + "\n")
            count += 1
    return count


def load_trace(path: str | Path) -> list[MicroOp]:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    with path.open() as handle:
        header = handle.readline().rstrip("\n")
        if header != _HEADER:
            raise ValueError(
                f"{path}: not a repro trace (header {header!r}, "
                f"expected {_HEADER!r})"
            )
        return [_decode(line) for line in handle if line.strip()]


# ---------------------------------------------------------------------------
# Characterization
# ---------------------------------------------------------------------------


@dataclass
class TraceProfile:
    """Measured characteristics of a finite trace."""

    instructions: int
    op_fractions: dict[str, float] = field(default_factory=dict)
    load_fraction: float = 0.0
    store_fraction: float = 0.0
    branch_fraction: float = 0.0
    taken_fraction: float = 0.0  #: of branches
    dependent_fraction: float = 0.0  #: instructions with >= 1 source
    mean_dependence_distance: float = 0.0
    distinct_lines_32b: int = 0  #: touched 32 B lines (working set proxy)
    footprint_bytes: int = 0  #: distinct lines x 32

    def summary(self) -> str:
        return (
            f"{self.instructions} instrs: "
            f"{self.load_fraction:.1%} loads, "
            f"{self.store_fraction:.1%} stores, "
            f"{self.branch_fraction:.1%} branches "
            f"({self.taken_fraction:.0%} taken); "
            f"{self.dependent_fraction:.0%} dependent "
            f"(mean distance {self.mean_dependence_distance:.1f}); "
            f"footprint ~{self.footprint_bytes // 1024} KB"
        )


def profile_trace(trace: Iterable[MicroOp]) -> TraceProfile:
    """Characterize a finite trace (consumes it)."""
    counts: dict[str, int] = {}
    total = 0
    branches = taken = 0
    dependent = 0
    distance_sum = 0
    distance_count = 0
    lines: set[int] = set()
    for mop in trace:
        total += 1
        counts[mop.op.name] = counts.get(mop.op.name, 0) + 1
        if mop.op is Op.BRANCH:
            branches += 1
            taken += int(mop.taken)
        if mop.srcs:
            dependent += 1
            distance_sum += sum(mop.srcs)
            distance_count += len(mop.srcs)
        if mop.is_memory:
            lines.add(mop.address >> 5)
    if total == 0:
        raise ValueError("cannot profile an empty trace")
    return TraceProfile(
        instructions=total,
        op_fractions={name: c / total for name, c in counts.items()},
        load_fraction=counts.get("LOAD", 0) / total,
        store_fraction=counts.get("STORE", 0) / total,
        branch_fraction=branches / total,
        taken_fraction=taken / branches if branches else 0.0,
        dependent_fraction=dependent / total,
        mean_dependence_distance=(
            distance_sum / distance_count if distance_count else 0.0
        ),
        distinct_lines_32b=len(lines),
        footprint_bytes=len(lines) * 32,
    )
