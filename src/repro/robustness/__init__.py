"""Simulation guard rails: invariants, watchdog, faults, resilient runs.

The cycle-level simulator trusts a web of bookkeeping — MSHR occupancy,
port grants, line-buffer/victim coherence, bus scheduling.  A single
slip silently corrupts a whole figure sweep or hangs ``python -m repro
all``.  This package makes the simulator defend itself:

* :mod:`repro.robustness.errors` — structured, state-dumping exceptions;
* :mod:`repro.robustness.invariants` — cheap always-on checks wired into
  the core and memory system, plus a periodic structural audit;
* :mod:`repro.robustness.watchdog` — commit-progress deadlock detection;
* :mod:`repro.robustness.faults` — deterministic fault injection used to
  prove the invariants and watchdog actually fire;
* :mod:`repro.robustness.runner` — per-design-point isolation with
  bounded, backed-off retry so one failing point yields a marked gap,
  not a dead run;
* :mod:`repro.robustness.deadline` — per-point wall-clock budgets
  (``--point-timeout`` / ``REPRO_POINT_TIMEOUT``) ending hangs the
  cycle-domain watchdog cannot see;
* :mod:`repro.robustness.shutdown` — SIGINT/SIGTERM handling that turns
  an operator interrupt into a checkpointed, resumable exit;
* :mod:`repro.robustness.chaos` — process-level fault injection (killed
  workers, torn writes, corrupt entries, silent hangs) driving the
  chaos suite and the CI chaos job.
"""

from repro.robustness.chaos import ChaosPlan, parse_directives
from repro.robustness.deadline import (
    Deadline,
    active_deadline,
    clear_deadline,
    configured_timeout,
    install_deadline,
    point_deadline,
)
from repro.robustness.errors import (
    DeadlineExceededError,
    DeadlockError,
    RobustnessError,
    SimulationInvariantError,
)
from repro.robustness.shutdown import (
    ShutdownController,
    SweepInterrupted,
    shutdown_requested,
)
from repro.robustness.faults import (
    FAULT_CLASSES,
    inject_corrupt_lru,
    inject_dropped_bus_grant,
    inject_lost_port_release,
    inject_stuck_mshr,
)
from repro.robustness.invariants import GrantLedger, audit_memory
from repro.robustness.runner import (
    FailureRecord,
    FailureLog,
    current_failure_log,
    resilient_sweeps,
    retry_backoff,
)
from repro.robustness.watchdog import CommitWatchdog

__all__ = [
    "ChaosPlan",
    "parse_directives",
    "Deadline",
    "active_deadline",
    "clear_deadline",
    "configured_timeout",
    "install_deadline",
    "point_deadline",
    "DeadlineExceededError",
    "DeadlockError",
    "RobustnessError",
    "SimulationInvariantError",
    "ShutdownController",
    "SweepInterrupted",
    "shutdown_requested",
    "FAULT_CLASSES",
    "inject_corrupt_lru",
    "inject_dropped_bus_grant",
    "inject_lost_port_release",
    "inject_stuck_mshr",
    "GrantLedger",
    "audit_memory",
    "FailureRecord",
    "FailureLog",
    "current_failure_log",
    "resilient_sweeps",
    "retry_backoff",
    "CommitWatchdog",
]
