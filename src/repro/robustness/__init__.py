"""Simulation guard rails: invariants, watchdog, faults, resilient runs.

The cycle-level simulator trusts a web of bookkeeping — MSHR occupancy,
port grants, line-buffer/victim coherence, bus scheduling.  A single
slip silently corrupts a whole figure sweep or hangs ``python -m repro
all``.  This package makes the simulator defend itself:

* :mod:`repro.robustness.errors` — structured, state-dumping exceptions;
* :mod:`repro.robustness.invariants` — cheap always-on checks wired into
  the core and memory system, plus a periodic structural audit;
* :mod:`repro.robustness.watchdog` — commit-progress deadlock detection;
* :mod:`repro.robustness.faults` — deterministic fault injection used to
  prove the invariants and watchdog actually fire;
* :mod:`repro.robustness.runner` — per-design-point isolation with
  bounded retry so one failing point yields a marked gap, not a dead run.
"""

from repro.robustness.errors import (
    DeadlockError,
    RobustnessError,
    SimulationInvariantError,
)
from repro.robustness.faults import (
    FAULT_CLASSES,
    inject_corrupt_lru,
    inject_dropped_bus_grant,
    inject_lost_port_release,
    inject_stuck_mshr,
)
from repro.robustness.invariants import GrantLedger, audit_memory
from repro.robustness.runner import (
    FailureRecord,
    FailureLog,
    current_failure_log,
    resilient_sweeps,
)
from repro.robustness.watchdog import CommitWatchdog

__all__ = [
    "DeadlockError",
    "RobustnessError",
    "SimulationInvariantError",
    "FAULT_CLASSES",
    "inject_corrupt_lru",
    "inject_dropped_bus_grant",
    "inject_lost_port_release",
    "inject_stuck_mshr",
    "GrantLedger",
    "audit_memory",
    "FailureRecord",
    "FailureLog",
    "current_failure_log",
    "resilient_sweeps",
    "CommitWatchdog",
]
