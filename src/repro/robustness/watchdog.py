"""Commit-progress watchdog: turn silent hangs into diagnosable errors.

The out-of-order core's event loop always advances time, so a true
deadlock (a head-of-window instruction whose completion never arrives --
e.g. a stuck MSHR or a port reservation that was never released) shows
up as an ever-growing gap between the current cycle and the last cycle
that committed an instruction.  The watchdog bounds that gap and raises
:class:`repro.robustness.errors.DeadlockError` with the stalled window
and MSHR file rendered into the error.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Iterable

from repro.robustness import dump
from repro.robustness.errors import DeadlockError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.mshr import MshrFile

#: Default stall bound, in cycles.  The slowest legitimate single event
#: (an L2 miss to memory behind a full MSHR file and a queued bus) is a
#: few hundred cycles; 100k cycles with zero commits is unambiguous.
DEFAULT_STALL_CYCLES = 100_000


class CommitWatchdog:
    """Raises when ``stall_cycles`` pass without a single commit."""

    def __init__(self, stall_cycles: int = DEFAULT_STALL_CYCLES):
        if stall_cycles < 1:
            raise ValueError(f"stall_cycles must be >= 1, got {stall_cycles}")
        self.stall_cycles = stall_cycles
        self._last_progress_cycle = 0

    def progress(self, cycle: int) -> None:
        """Record that at least one instruction committed at ``cycle``."""
        self._last_progress_cycle = cycle

    def check(
        self, cycle: int, window: Iterable, mshrs: "MshrFile"
    ) -> None:
        """Raise :class:`DeadlockError` if the stall bound is exceeded.

        Only meaningful while the window is non-empty -- an empty window
        with no commits just means the trace ran dry.
        """
        if cycle - self._last_progress_cycle <= self.stall_cycles:
            return
        # Ship the stall through the live-telemetry beacon (if one is
        # active) before raising: a sweep operator then sees *which*
        # point deadlocked, with cycle evidence, instead of inferring a
        # dead worker from heartbeat silence.  Lazy import -- telemetry
        # imports this module for LivenessMonitor.
        from repro.observability import telemetry

        telemetry.notify_stall(cycle, cycle - self._last_progress_cycle)
        raise DeadlockError(
            f"no instruction committed for {cycle - self._last_progress_cycle} "
            f"cycles (bound {self.stall_cycles}); the pipeline is deadlocked",
            {
                "stalled window": dump.dump_window(window, cycle),
                "MSHR file": dump.dump_mshrs(mshrs, cycle),
            },
        )


#: Default wall-clock bound before a quiet worker is called stale.  A
#: healthy worker heartbeats every ~0.25s, so ten seconds of silence is
#: two orders of magnitude beyond jitter.
DEFAULT_STALE_SECONDS = 10.0


class LivenessMonitor:
    """Wall-clock liveness evidence: last-heartbeat age per worker.

    The :class:`CommitWatchdog` bounds stalls in *simulated* cycles from
    inside one simulation; this monitor bounds silence in *wall-clock*
    seconds from outside, across worker processes.  Together they
    distinguish the two failure shapes a parallel sweep can show: a
    deadlocked pipeline (watchdog fires, beacon reports the stall) and a
    dead or wedged worker process (heartbeats stop arriving, the age
    here grows without bound).

    ``clock`` is injectable for tests; production uses ``monotonic``.
    """

    def __init__(
        self,
        stale_after: float = DEFAULT_STALE_SECONDS,
        clock: Callable[[], float] = time.monotonic,
    ):
        if stale_after <= 0:
            raise ValueError(f"stale_after must be positive: {stale_after}")
        self.stale_after = stale_after
        self._clock = clock
        self._last_beat: dict[str, float] = {}

    def beat(self, worker: str) -> None:
        """Record a heartbeat (or any sign of life) from ``worker``."""
        self._last_beat[worker] = self._clock()

    def age(self, worker: str) -> float:
        """Seconds since the worker's last heartbeat (inf if never)."""
        last = self._last_beat.get(worker)
        if last is None:
            return float("inf")
        return self._clock() - last

    def status(self, worker: str) -> str:
        """``"alive"``, ``"stale"``, or ``"unknown"`` (never heard from)."""
        last = self._last_beat.get(worker)
        if last is None:
            return "unknown"
        return "alive" if self._clock() - last <= self.stale_after else "stale"

    def workers(self) -> list[str]:
        """Every worker ever heard from, in first-heartbeat order."""
        return list(self._last_beat)

    def stale_workers(self) -> list[str]:
        """Workers whose last heartbeat is older than ``stale_after``."""
        now = self._clock()
        return [
            worker
            for worker, last in self._last_beat.items()
            if now - last > self.stale_after
        ]
