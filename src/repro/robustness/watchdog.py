"""Commit-progress watchdog: turn silent hangs into diagnosable errors.

The out-of-order core's event loop always advances time, so a true
deadlock (a head-of-window instruction whose completion never arrives --
e.g. a stuck MSHR or a port reservation that was never released) shows
up as an ever-growing gap between the current cycle and the last cycle
that committed an instruction.  The watchdog bounds that gap and raises
:class:`repro.robustness.errors.DeadlockError` with the stalled window
and MSHR file rendered into the error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.robustness import dump
from repro.robustness.errors import DeadlockError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.mshr import MshrFile

#: Default stall bound, in cycles.  The slowest legitimate single event
#: (an L2 miss to memory behind a full MSHR file and a queued bus) is a
#: few hundred cycles; 100k cycles with zero commits is unambiguous.
DEFAULT_STALL_CYCLES = 100_000


class CommitWatchdog:
    """Raises when ``stall_cycles`` pass without a single commit."""

    def __init__(self, stall_cycles: int = DEFAULT_STALL_CYCLES):
        if stall_cycles < 1:
            raise ValueError(f"stall_cycles must be >= 1, got {stall_cycles}")
        self.stall_cycles = stall_cycles
        self._last_progress_cycle = 0

    def progress(self, cycle: int) -> None:
        """Record that at least one instruction committed at ``cycle``."""
        self._last_progress_cycle = cycle

    def check(
        self, cycle: int, window: Iterable, mshrs: "MshrFile"
    ) -> None:
        """Raise :class:`DeadlockError` if the stall bound is exceeded.

        Only meaningful while the window is non-empty -- an empty window
        with no commits just means the trace ran dry.
        """
        if cycle - self._last_progress_cycle <= self.stall_cycles:
            return
        raise DeadlockError(
            f"no instruction committed for {cycle - self._last_progress_cycle} "
            f"cycles (bound {self.stall_cycles}); the pipeline is deadlocked",
            {
                "stalled window": dump.dump_window(window, cycle),
                "MSHR file": dump.dump_mshrs(mshrs, cycle),
            },
        )
