"""Render simulator state as text blocks for guard-rail error reports.

These helpers are only called on the failure path, so they favor
completeness over speed.  Rendering goes through
:func:`repro.core.reporting.format_table` (imported lazily to keep the
memory/CPU layers importable without the experiment layer).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.hierarchy import MemorySystem
    from repro.memory.mshr import MshrFile

#: Window rows rendered into a dump (the head is what matters).
_WINDOW_ROWS = 16


def _format_table(headers: list[str], rows: list[list[str]], title: str) -> str:
    from repro.core.reporting import format_table

    return format_table(headers, rows, title)


def dump_window(window: Iterable, cycle: int) -> str:
    """The in-flight instruction window, oldest first (``_Slot`` objects)."""
    rows = []
    for slot in window:
        if len(rows) >= _WINDOW_ROWS:
            rows.append(["...", "...", "...", "...", "..."])
            break
        mop = slot.mop
        rows.append(
            [
                str(slot.seq),
                mop.op.name,
                hex(mop.address) if mop.is_memory else "-",
                "yes" if slot.issued else "no",
                str(slot.complete) if slot.issued else "-",
            ]
        )
    return _format_table(
        ["seq", "op", "address", "issued", "complete"],
        rows,
        f"instruction window at cycle {cycle}",
    )


def dump_mshrs(mshrs: "MshrFile", cycle: int) -> str:
    """The MSHR file: every tracked line and its fill-ready cycle."""
    rows = [
        [hex(line), str(ready), "in flight" if ready > cycle else "retired"]
        for line, ready in sorted(mshrs._pending.items())
    ]
    if not rows:
        rows = [["-", "-", "empty"]]
    title = (
        f"MSHR file at cycle {cycle}: "
        f"{mshrs.outstanding(cycle)}/{mshrs.entries} outstanding"
    )
    return _format_table(["line", "ready cycle", "status"], rows, title)


def dump_memory(memory: "MemorySystem", cycle: int) -> str:
    """One-screen summary of the memory system's structural state."""
    lines = [f"memory system at cycle {cycle}"]
    cfg = memory.config
    lines.append(
        f"  L1: {cfg.l1_size}B {cfg.l1_assoc}-way, {len(memory.l1)} lines "
        f"resident, ports={cfg.port_policy}"
    )
    lines.append(
        f"  MSHRs: {memory.mshrs.outstanding(cycle)}/{memory.mshrs.entries} "
        f"outstanding ({len(memory.mshrs._pending)} tracked)"
    )
    if memory.line_buffer is not None:
        lines.append(
            f"  line buffer: {len(memory.line_buffer)}/"
            f"{memory.line_buffer.entries} entries"
        )
    if memory.victim_cache is not None:
        lines.append(
            f"  victim cache: {len(memory.victim_cache)}/"
            f"{memory.victim_cache.entries} entries"
        )
    stats = memory.stats
    lines.append(
        f"  traffic: {stats.loads} loads, {stats.stores} stores, "
        f"{stats.l1_misses} L1 misses, {stats.delayed_hits} delayed hits"
    )
    return "\n".join(lines)
