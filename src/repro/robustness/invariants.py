"""Always-on internal-consistency checks for the simulator.

Two kinds of guard live here:

* **incremental checks** — O(1) helpers the hot paths call every access
  (:class:`GrantLedger` for per-cycle port/bank grant capacity,
  :func:`check_causality` for bus/fill timestamps);
* **structural audit** — :func:`audit_memory`, a full sweep of the
  memory system's cross-structure invariants (LRU bookkeeping, line
  buffer and victim-cache coherence, MSHR balance, served-by
  accounting) that the core runs periodically and at end of run.

All violations raise
:class:`repro.robustness.errors.SimulationInvariantError` with a
rendered state dump attached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.robustness import dump
from repro.robustness.errors import SimulationInvariantError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.hierarchy import MemorySystem

#: Ledger size at which old per-cycle grant counters are pruned.
_LEDGER_PRUNE_AT = 8192


class GrantLedger:
    """Counts grants per start cycle and rejects over-subscription.

    A timestamped-resource arbiter may grant at most ``capacity``
    accesses with the same start cycle (per key -- a bank key folds the
    bank index in).  Lost port releases and broken ``_next_free``
    bookkeeping surface here as a (cycle, key) counter exceeding the
    hardware's capacity.
    """

    def __init__(self, capacity: int, name: str):
        if capacity < 1:
            raise ValueError(f"ledger capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._counts: dict[tuple, int] = {}

    def record(self, cycle: int, key: int = 0, weight: int = 1) -> None:
        """Book ``weight`` grants starting at ``cycle`` on resource ``key``."""
        slot = (cycle, key)
        count = self._counts.get(slot, 0) + weight
        if count > self.capacity:
            raise SimulationInvariantError(
                f"{self.name}: {count} grants at cycle {cycle} (key {key}) "
                f"exceed per-cycle capacity {self.capacity}",
                {"grant ledger": self._render(cycle)},
            )
        self._counts[slot] = count
        if len(self._counts) > _LEDGER_PRUNE_AT:
            self._prune()

    def tap(self, cycle: int, fields: dict) -> None:
        """``EventChannel`` tap: book the grant an emission describes.

        The arbiters emit ``mem.port.grant`` events through a channel
        this ledger taps, so the oversubscription guard observes exactly
        the stream a tracer would capture.
        """
        self.record(cycle, fields.get("key", 0), fields.get("weight", 1))

    def _prune(self) -> None:
        """Drop the oldest half of the counters to bound memory."""
        cutoff = sorted(slot[0] for slot in self._counts)[len(self._counts) // 2]
        self._counts = {
            slot: count for slot, count in self._counts.items() if slot[0] >= cutoff
        }

    def _render(self, cycle: int) -> str:
        recent = sorted(self._counts.items())[-8:]
        rows = "\n".join(
            f"  cycle {slot[0]} key {slot[1]}: {count} grants"
            for slot, count in recent
        )
        return f"{self.name} (capacity {self.capacity}/cycle), recent grants:\n{rows}"


def check_causality(
    what: str, requested_cycle: int, start_cycle: int, done_cycle: int
) -> None:
    """A scheduled resource window must lie at or after its request.

    Dropped bus grants and mis-accounted transfers surface as data
    "arriving" before it was asked for, or as zero-length occupancy.
    """
    if start_cycle < requested_cycle or done_cycle <= start_cycle:
        raise SimulationInvariantError(
            f"{what}: acausal schedule (requested cycle {requested_cycle}, "
            f"granted [{start_cycle}, {done_cycle}))"
        )


def bus_causality_tap(cycle: int, fields: dict) -> None:
    """``EventChannel`` tap enforcing :func:`check_causality` on buses.

    Installed on the backside ``mem.bus.transfer`` channel; the tap
    runs at the *call site* of ``bus.transfer`` (not inside the bus
    model), so fault injections that replace the transfer method are
    still observed -- see ``inject_dropped_bus_grant``.
    """
    check_causality(
        f"{fields['bus']} transfer", cycle, fields["start"], fields["done"]
    )


def audit_memory(memory: "MemorySystem", cycle: int) -> None:
    """Full structural audit of the memory system; raises on any breach."""
    problems: list[str] = []
    problems += memory.l1.audit("L1")
    mshrs = memory.mshrs
    if mshrs.outstanding(cycle) > mshrs.entries:
        problems.append(
            f"MSHR file: {mshrs.outstanding(cycle)} outstanding entries "
            f"exceed the {mshrs.entries} registers"
        )
    if len(memory._pending_served) > 4 * memory.config.mshrs:
        problems.append(
            f"merged-miss bookkeeping grew to {len(memory._pending_served)} "
            f"entries (bound {4 * memory.config.mshrs})"
        )
    if memory.line_buffer is not None:
        for line in memory.line_buffer.resident_lines():
            if not memory.l1.probe(line):
                problems.append(
                    f"line buffer holds line {line:#x} absent from the L1 "
                    "(missed invalidation)"
                )
                break
        problems += memory.line_buffer.audit()
    if memory.victim_cache is not None:
        for line in memory.victim_cache.resident_lines():
            if memory.l1.probe(line):
                problems.append(
                    f"victim cache and L1 both hold line {line:#x} "
                    "(exclusivity breached)"
                )
                break
        problems += memory.victim_cache.audit()
    stats = memory.stats
    if sum(stats.served_by.values()) != stats.accesses:
        problems.append(
            f"served-by accounting: {sum(stats.served_by.values())} served "
            f"vs {stats.accesses} accesses"
        )
    if problems:
        raise SimulationInvariantError(
            "memory-system audit failed: " + "; ".join(problems[:3]),
            {
                "audit findings": "\n".join(f"- {p}" for p in problems),
                "memory state": dump.dump_memory(memory, cycle),
                "MSHR file": dump.dump_mshrs(memory.mshrs, cycle),
            },
        )
