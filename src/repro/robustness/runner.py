"""Per-design-point isolation for sweeps and figures.

A figure is a grid of independent design points; one point hitting a
guard rail (or any other error) must not kill the other hundred.  Code
that loops over :func:`repro.core.experiment.run_experiment` opens a
:func:`resilient_sweeps` context; inside it, a failing point is retried
once at a reduced instruction budget and, if it still fails, recorded
as a :class:`FailureRecord` while the sweep continues with a marked gap
(a failed :class:`~repro.cpu.result.SimulationResult` whose IPC is
NaN).  The CLI prints the accumulated failure summary at the end and
exits nonzero-but-informative.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: Process-wide active failure log (``None`` = resilience off, fail fast).
_ACTIVE_LOG: "FailureLog | None" = None

#: Default backoff shape for in-sweep retries.  The base is small --
#: retries here are about letting transient pressure (a loaded machine,
#: a filesystem hiccup around the store) clear, not about remote
#: services -- and the per-point wall-clock cap keeps a pathological
#: point from stalling a whole campaign.
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0
DEFAULT_RETRY_BUDGET_SECONDS = 30.0


def retry_backoff(
    attempt: int,
    *,
    base: float = DEFAULT_BACKOFF_BASE,
    cap: float = DEFAULT_BACKOFF_CAP,
    seed: str = "",
) -> float:
    """Delay before retry ``attempt`` (2 = first retry): exponential
    backoff with deterministic jitter.

    The jitter is seeded from ``seed`` (the design-point label) and the
    attempt number through SHA-256, so two runs of the same sweep back
    off identically -- reproducibility extends to the failure path --
    while different points de-synchronize instead of thundering in
    lockstep.  The jittered delay lands in ``[0.75, 1.25) * min(cap,
    base * 2**(attempt - 2))``.
    """
    if attempt < 2:
        return 0.0
    nominal = min(cap, base * (2.0 ** (attempt - 2)))
    digest = hashlib.sha256(f"{seed}#{attempt}".encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return nominal * (0.75 + 0.5 * fraction)


@dataclass
class FailureRecord:
    """One design point that failed (and possibly recovered)."""

    label: str  #: human-readable design point, e.g. "1~ duplicate 32K / gcc"
    workload: str
    error_type: str
    message: str  #: first lines of the structured error, state dump included
    attempts: int
    resolution: str  #: "recovered" (reduced budget), "gap" (point lost),
    #: or "timeout" (wall-clock deadline expired -- a gap, never retried)


@dataclass
class FailureLog:
    """Accumulates failures across one resilient sweep run."""

    retries: int = 1  #: extra attempts per point, at reduced budget
    budget_divisor: int = 4  #: instruction-budget shrink per retry
    backoff_base: float = DEFAULT_BACKOFF_BASE  #: first-retry delay, seconds
    backoff_cap: float = DEFAULT_BACKOFF_CAP  #: per-retry delay ceiling
    #: Total wall clock one point may spend on retries (delays included);
    #: when the budget runs out, remaining retries are skipped and the
    #: point becomes a gap.
    retry_budget_seconds: float = DEFAULT_RETRY_BUDGET_SECONDS
    records: list[FailureRecord] = field(default_factory=list)

    def record(self, record: FailureRecord) -> None:
        self.records.append(record)

    def backoff(self, attempt: int, seed: str = "") -> float:
        """Deterministic pre-retry delay for this log's backoff shape."""
        return retry_backoff(
            attempt, base=self.backoff_base, cap=self.backoff_cap, seed=seed
        )

    @property
    def gaps(self) -> list[FailureRecord]:
        """Unresolved points (plain gaps and timeout gaps alike)."""
        return [r for r in self.records if r.resolution in ("gap", "timeout")]

    @property
    def timeouts(self) -> list[FailureRecord]:
        return [r for r in self.records if r.resolution == "timeout"]

    @property
    def recovered(self) -> list[FailureRecord]:
        return [r for r in self.records if r.resolution == "recovered"]

    def summary(self) -> str:
        """Render the failure report (empty string when clean)."""
        from repro.core.reporting import render_failure_summary

        return render_failure_summary(self.records)


def current_failure_log() -> FailureLog | None:
    """The active log, if a resilient sweep is in progress."""
    return _ACTIVE_LOG


@contextmanager
def resilient_sweeps(
    log: FailureLog | None = None,
    *,
    retries: int = 1,
    budget_divisor: int = 4,
) -> Iterator[FailureLog]:
    """Run the enclosed sweeps with per-design-point isolation.

    Nested contexts share the outermost log so a whole ``repro all``
    run produces one failure summary.
    """
    global _ACTIVE_LOG
    if retries < 0:
        raise ValueError(f"retries cannot be negative: {retries}")
    if budget_divisor < 2:
        raise ValueError(f"budget_divisor must be >= 2: {budget_divisor}")
    previous = _ACTIVE_LOG
    active = previous or log or FailureLog(retries=retries, budget_divisor=budget_divisor)
    _ACTIVE_LOG = active
    try:
        yield active
    finally:
        _ACTIVE_LOG = previous
