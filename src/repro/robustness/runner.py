"""Per-design-point isolation for sweeps and figures.

A figure is a grid of independent design points; one point hitting a
guard rail (or any other error) must not kill the other hundred.  Code
that loops over :func:`repro.core.experiment.run_experiment` opens a
:func:`resilient_sweeps` context; inside it, a failing point is retried
once at a reduced instruction budget and, if it still fails, recorded
as a :class:`FailureRecord` while the sweep continues with a marked gap
(a failed :class:`~repro.cpu.result.SimulationResult` whose IPC is
NaN).  The CLI prints the accumulated failure summary at the end and
exits nonzero-but-informative.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: Process-wide active failure log (``None`` = resilience off, fail fast).
_ACTIVE_LOG: "FailureLog | None" = None


@dataclass
class FailureRecord:
    """One design point that failed (and possibly recovered)."""

    label: str  #: human-readable design point, e.g. "1~ duplicate 32K / gcc"
    workload: str
    error_type: str
    message: str  #: first lines of the structured error, state dump included
    attempts: int
    resolution: str  #: "recovered" (reduced budget) or "gap" (point lost)


@dataclass
class FailureLog:
    """Accumulates failures across one resilient sweep run."""

    retries: int = 1  #: extra attempts per point, at reduced budget
    budget_divisor: int = 4  #: instruction-budget shrink per retry
    records: list[FailureRecord] = field(default_factory=list)

    def record(self, record: FailureRecord) -> None:
        self.records.append(record)

    @property
    def gaps(self) -> list[FailureRecord]:
        return [r for r in self.records if r.resolution == "gap"]

    @property
    def recovered(self) -> list[FailureRecord]:
        return [r for r in self.records if r.resolution == "recovered"]

    def summary(self) -> str:
        """Render the failure report (empty string when clean)."""
        from repro.core.reporting import render_failure_summary

        return render_failure_summary(self.records)


def current_failure_log() -> FailureLog | None:
    """The active log, if a resilient sweep is in progress."""
    return _ACTIVE_LOG


@contextmanager
def resilient_sweeps(
    log: FailureLog | None = None,
    *,
    retries: int = 1,
    budget_divisor: int = 4,
) -> Iterator[FailureLog]:
    """Run the enclosed sweeps with per-design-point isolation.

    Nested contexts share the outermost log so a whole ``repro all``
    run produces one failure summary.
    """
    global _ACTIVE_LOG
    if retries < 0:
        raise ValueError(f"retries cannot be negative: {retries}")
    if budget_divisor < 2:
        raise ValueError(f"budget_divisor must be >= 2: {budget_divisor}")
    previous = _ACTIVE_LOG
    active = previous or log or FailureLog(retries=retries, budget_divisor=budget_divisor)
    _ACTIVE_LOG = active
    try:
        yield active
    finally:
        _ACTIVE_LOG = previous
