"""Process-level chaos: reproduce the failures a long campaign will hit.

:mod:`repro.robustness.faults` proves the *in-simulation* guard rails
fire; this module supplies the other half of the failure universe --
whole processes dying, writes tearing mid-line, on-disk entries
rotting, and simulations hanging in ways the cycle-domain watchdog
cannot see.  The chaos suite (``tests/integration/test_chaos.py``) and
the CI chaos job use these helpers to assert every such failure ends
in a clean resume or a marked gap -- never a hang, never a stack trace.

Two halves:

* **In-process fault directives**, armed through the ``REPRO_CHAOS``
  environment variable so they reach CLI subprocesses and pool workers
  without code changes.  The variable holds comma-separated directives,
  each optionally scoped to one workload name::

      REPRO_CHAOS="hang:gcc"            # gcc points hang forever
      REPRO_CHAOS="sleep=0.4"           # every point takes >= 0.4s
      REPRO_CHAOS="stuck-mshr:tomcatv"  # watchdog-visible deadlock

  - ``stuck-mshr`` injects :func:`~repro.robustness.faults.
    inject_stuck_mshr` with the watchdog *kept*: the point dies with a
    diagnosable ``DeadlockError`` (retry/gap path).
  - ``hang`` injects the same stuck MSHR but disables the commit
    watchdog *and* the core's idle-cycle time jump, producing a silent
    wall-clock spin -- the hang only a ``--point-timeout`` deadline can
    end.  Heartbeats stop with it, so telemetry shows the real shape of
    a wedged worker.
  - ``sleep=S`` stretches every matching point by ``S`` wall-clock
    seconds before the timed region, without touching its simulated
    numbers -- deterministic slowness for kill-and-resume tests.

  The hook in :func:`repro.core.experiment._simulate` costs one
  environment lookup per simulation when chaos is off.

* **On-disk and process havoc helpers** used by the chaos tests from
  the outside: tearing a JSONL line, corrupting a store entry three
  different ways, and finding/killing worker processes.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.experiment import ExperimentSettings
    from repro.cpu.core import OutOfOrderCore
    from repro.memory.hierarchy import MemorySystem
    from repro.workloads.generator import WorkloadSpec

#: Environment variable holding the comma-separated chaos directives.
CHAOS_ENV = "REPRO_CHAOS"

#: Directive names accepted by :func:`parse_directives`.
KNOWN_KINDS = ("stuck-mshr", "hang", "sleep")


@dataclass(frozen=True)
class Directive:
    """One parsed chaos directive: what to break, where, how much."""

    kind: str  #: "stuck-mshr" | "hang" | "sleep"
    workload: str | None = None  #: None = every workload
    seconds: float = 0.0  #: only meaningful for "sleep"

    def matches(self, workload: str) -> bool:
        return self.workload is None or self.workload == workload


def parse_directives(raw: str) -> tuple[Directive, ...]:
    """Parse a ``REPRO_CHAOS`` value; malformed pieces are ignored.

    Chaos must never turn into a new failure mode of its own -- a typo
    in the variable degrades to "no chaos", not a crash.
    """
    directives = []
    for piece in raw.split(","):
        piece = piece.strip()
        if not piece:
            continue
        head, _, workload = piece.partition(":")
        kind, _, argument = head.partition("=")
        kind = kind.strip().lower()
        if kind not in KNOWN_KINDS:
            continue
        seconds = 0.0
        if kind == "sleep":
            try:
                seconds = float(argument)
            except ValueError:
                continue
            if seconds < 0:
                continue
        directives.append(
            Directive(kind, workload.strip() or None, seconds)
        )
    return tuple(directives)


class ChaosPlan:
    """The directives armed for this process, applied per simulation."""

    def __init__(self, directives: tuple[Directive, ...]):
        self.directives = directives

    @classmethod
    def from_env(cls) -> "ChaosPlan | None":
        """The active plan, or ``None`` (the overwhelmingly common case)."""
        raw = os.environ.get(CHAOS_ENV)
        if not raw:
            return None
        directives = parse_directives(raw)
        return cls(directives) if directives else None

    def prepare(
        self,
        memory: "MemorySystem",
        spec: "WorkloadSpec",
        settings: "ExperimentSettings",
    ) -> "ExperimentSettings":
        """Apply pre-run chaos to one simulation; returns the (possibly
        modified) settings the core must be built with."""
        from repro.robustness.faults import inject_stuck_mshr

        for directive in self.directives:
            if not directive.matches(spec.name):
                continue
            if directive.kind == "sleep":
                time.sleep(directive.seconds)
            elif directive.kind == "stuck-mshr":
                inject_stuck_mshr(memory)
            elif directive.kind == "hang":
                inject_stuck_mshr(memory)
                # The watchdog would end this hang with a DeadlockError;
                # the point of "hang" is a failure only a wall-clock
                # deadline can see, so silence the cycle-domain guard.
                settings = replace(
                    settings,
                    cpu=replace(settings.cpu, watchdog_stall_cycles=0),
                )
        return settings

    def arm(self, core: "OutOfOrderCore", spec: "WorkloadSpec") -> None:
        """Apply chaos that needs the constructed core (``hang`` only)."""
        for directive in self.directives:
            if directive.kind == "hang" and directive.matches(spec.name):
                # Without the idle-cycle jump the core walks one cycle
                # per loop iteration toward the stuck MSHR's far-future
                # fill -- a genuine CPU-bound spin, not a sleep.
                core._skip_to_next_event = (
                    lambda cycle, window, comp, blocking_branch: cycle + 1
                )


# ---------------------------------------------------------------------------
# On-disk havoc: the failures cache verify and the ledger must survive
# ---------------------------------------------------------------------------

#: Corruption modes understood by :func:`corrupt_entry`.
CORRUPTION_MODES = ("truncate", "garbage", "schema")


def corrupt_entry(path: Path | str, mode: str = "truncate") -> None:
    """Damage one store entry the way real-world rot does.

    ``truncate`` -- a torn write: the file ends mid-token;
    ``garbage``  -- the bytes are not JSON at all;
    ``schema``   -- valid JSON stamped with an impossible schema version.
    """
    path = Path(path)
    if mode == "truncate":
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])
    elif mode == "garbage":
        path.write_bytes(b"\x00\xffnot json at all\x1f")
    elif mode == "schema":
        import json

        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["schema"] = -1
        path.write_text(json.dumps(entry), encoding="utf-8")
    else:
        raise ValueError(
            f"unknown corruption mode {mode!r}; "
            f"choose from: {', '.join(CORRUPTION_MODES)}"
        )


def tear_trailing_line(path: Path | str, keep_fraction: float = 0.5) -> str:
    """Cut the final line of a JSONL file mid-record (a torn append).

    Returns the bytes that were torn off, for assertions.  The file is
    left without a trailing newline -- exactly what a crash between
    ``write()`` and completion leaves behind.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines(keepends=True)
    if not lines:
        raise ValueError(f"{path} has no lines to tear")
    last = lines[-1].rstrip("\n")
    cut = max(1, int(len(last) * keep_fraction))
    torn = last[cut:]
    path.write_text("".join(lines[:-1]) + last[:cut], encoding="utf-8")
    return torn


# ---------------------------------------------------------------------------
# Process havoc: killing workers the way the OS does
# ---------------------------------------------------------------------------


def child_pids(pid: int) -> list[int]:
    """Direct live children of ``pid`` (Linux ``/proc``; [] elsewhere)."""
    children: list[int] = []
    task_dir = Path(f"/proc/{pid}/task")
    try:
        for task in task_dir.iterdir():
            try:
                text = (task / "children").read_text()
            except OSError:
                continue
            children.extend(int(child) for child in text.split())
    except OSError:
        return []
    return sorted(set(children))


def kill_process(pid: int, sig: int = signal.SIGKILL) -> bool:
    """Deliver ``sig`` to ``pid``; False when the process is gone."""
    try:
        os.kill(pid, sig)
    except (ProcessLookupError, PermissionError):
        return False
    return True
