"""Structured simulator-fault exceptions carrying a diagnosable state dump.

Every guard-rail failure raises one of these instead of a bare
``AssertionError``: the message names the broken invariant, and
``state`` holds named text blocks (pipeline window, MSHR file, cache
audit findings, ...) rendered through :mod:`repro.core.reporting` so a
failing sweep leaves behind something a human can debug from.
"""

from __future__ import annotations


class RobustnessError(RuntimeError):
    """Base class for simulator self-check failures.

    ``state`` maps section titles to pre-rendered text blocks; ``str()``
    of the exception includes every section so the dump survives into
    logs, pytest output, and the resilient runner's failure reports.
    """

    def __init__(self, message: str, state: dict[str, str] | None = None):
        self.message = message
        self.state = dict(state or {})
        super().__init__(message)

    def __str__(self) -> str:
        if not self.state:
            return self.message
        blocks = [self.message]
        for title, text in self.state.items():
            blocks.append(f"--- {title} ---\n{text}")
        return "\n".join(blocks)


class SimulationInvariantError(RobustnessError):
    """An internal-consistency invariant of the simulator was violated.

    Examples: over-subscribed cache port, MSHR file above capacity, a
    line buffered without a backing L1 line, a bus transfer completing
    before it was requested, corrupted LRU bookkeeping.
    """


class DeadlockError(RobustnessError):
    """The pipeline stopped committing and cannot make progress.

    Raised by :class:`repro.robustness.watchdog.CommitWatchdog` with the
    stalled instruction window and the MSHR file attached, so the stuck
    resource is visible directly in the error.
    """


class DeadlineExceededError(RobustnessError):
    """A design point overran its wall-clock budget.

    Raised cooperatively by :class:`repro.robustness.deadline.Deadline`
    from inside the simulation loop (or synthesized by the parent when
    a worker goes silent past the budget plus grace).  The engine
    resolves it as a ``timeout`` gap: recorded in ledger and telemetry,
    never retried -- the point already consumed its whole budget.
    """

    def __init__(self, message: str, *, seconds: float = 0.0):
        super().__init__(message)
        self.seconds = seconds
