"""Graceful shutdown: turn SIGINT/SIGTERM into a clean, resumable exit.

Without this module an operator interrupt tears a sweep down mid-write:
the process pool dies with a stack trace, the run ledger never hears
about the points that did finish, and the only record of hours of work
is whatever happened to reach the result store.  With it, the first
signal flips a flag; the engine stops dispatching new design points,
cancels or abandons in-flight workers, lets the checkpoint/ledger/
telemetry sinks flush, and the CLI exits with a distinct code so a
follow-up ``--resume`` (or ``repro runs resume``) continues where the
run stopped.  A second signal restores default handling -- the hard
abort stays one keypress away.

The flag lives module-global (like the failure log and the telemetry
hub) so the executor can poll it from deep inside ``run_batch`` without
threading a handle through every call site.
"""

from __future__ import annotations

import signal
import sys
import threading
from typing import IO


class SweepInterrupted(RuntimeError):
    """A sweep stopped early because shutdown was requested.

    Raised by the engine between design points (serial) or while
    consuming worker futures (parallel).  ``completed`` and ``remaining``
    count design points of the interrupted batch; ``checkpoint_path``
    is filled in by :meth:`~repro.engine.executor.ExecutionPlan.execute`
    when a checkpoint was being kept, so the CLI can print an exact
    resume hint.
    """

    def __init__(self, completed: int, remaining: int):
        super().__init__(
            f"sweep interrupted: {completed} design point(s) finished, "
            f"{remaining} not started"
        )
        self.completed = completed
        self.remaining = remaining
        self.checkpoint_path: str | None = None


class ShutdownController:
    """Installs SIGINT/SIGTERM handlers for the enclosing sweep run.

    First signal: request a graceful stop (the engine notices between
    points) and tell the operator.  Second signal: restore the previous
    handler and re-deliver default behavior, so a wedged run can still
    be killed the ordinary way.

    Handler installation only works from the main thread; anywhere else
    (tests driving the CLI from a worker thread) the controller degrades
    to a manually settable flag.
    """

    def __init__(
        self,
        *,
        signals: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
        stream: "IO[str] | None" = None,
    ):
        self.signals = signals
        self.stream = stream if stream is not None else sys.stderr
        self._event = threading.Event()
        self._previous: dict[int, object] = {}

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "ShutdownController":
        global _CONTROLLER
        for signum in self.signals:
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except ValueError:  # not the main thread: flag-only mode
                break
        _CONTROLLER = self
        return self

    def __exit__(self, *exc_info) -> None:
        global _CONTROLLER
        if _CONTROLLER is self:
            _CONTROLLER = None
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, TypeError, OSError):
                pass
        self._previous.clear()

    # -- the handler -----------------------------------------------------

    def _handle(self, signum, frame) -> None:
        if self._event.is_set():
            # Second signal: hand control back to the default behavior.
            previous = self._previous.pop(signum, signal.SIG_DFL)
            try:
                signal.signal(signum, previous)
            except (ValueError, TypeError, OSError):
                pass
            raise KeyboardInterrupt
        self._event.set()
        try:
            name = signal.Signals(signum).name
        except ValueError:
            name = str(signum)
        print(
            f"[{name}: finishing in-flight points, writing checkpoint, "
            "then exiting -- signal again to abort hard]",
            file=self.stream,
        )

    # -- the flag --------------------------------------------------------

    def request(self) -> None:
        """Programmatic shutdown request (tests, embedding callers)."""
        self._event.set()

    def requested(self) -> bool:
        return self._event.is_set()


#: The active controller, installed by the CLI around a sweep run.
_CONTROLLER: ShutdownController | None = None


def active_controller() -> ShutdownController | None:
    return _CONTROLLER


def shutdown_requested() -> bool:
    """Polled by the engine between design points; cheap when idle."""
    controller = _CONTROLLER
    return controller is not None and controller.requested()
