"""Deterministic fault injection: prove the guard rails actually fire.

Each injector corrupts one live component of a
:class:`~repro.memory.hierarchy.MemorySystem` the way a real simulator
bug would -- a register that never frees, bookkeeping that forgets a
reservation, state scrambled behind the model's back.  The test suite
(and the CI smoke test) runs a workload against each fault and asserts
that the matching invariant or the watchdog catches it with a
structured error, so the guard rails themselves are regression-tested.

All injection is monkey-patching of bound methods or direct state
mutation on *one* memory-system instance; nothing global is touched and
un-faulted instances are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.hierarchy import MemorySystem

#: A fill cycle far enough out that it never legitimately retires.
FAR_FUTURE = 1 << 60


@dataclass(frozen=True)
class FaultClass:
    """Catalog entry describing one injectable fault and its detector."""

    name: str
    description: str
    caught_by: str  #: "invariant" or "watchdog"


FAULT_CLASSES: tuple[FaultClass, ...] = (
    FaultClass(
        "stuck-mshr",
        "an MSHR fill never retires, wedging later references to its line",
        "watchdog",
    ),
    FaultClass(
        "dropped-bus-grant",
        "a bus transfer is granted zero occupancy (data teleports)",
        "invariant",
    ),
    FaultClass(
        "lost-port-release",
        "a port reservation is held forever, or its booking is forgotten",
        "watchdog / invariant",
    ),
    FaultClass(
        "corrupt-lru",
        "L1 replacement state is scrambled (duplicate way, phantom dirty)",
        "invariant",
    ),
)


def inject_stuck_mshr(memory: "MemorySystem", *, after_fills: int = 1) -> None:
    """From the ``after_fills``-th fill on, MSHR registers never retire.

    Later references to a stuck line become delayed hits that wait on a
    fill which never arrives; the head of the instruction window stops
    committing and the watchdog raises
    :class:`~repro.robustness.errors.DeadlockError`.
    """
    mshrs = memory.mshrs
    original = mshrs.complete
    fills = 0

    def stuck_complete(
        line: int, fill_cycle: int, alloc_cycle: int | None = None
    ) -> None:
        nonlocal fills
        fills += 1
        if fills >= after_fills:
            fill_cycle = FAR_FUTURE
        original(line, fill_cycle, alloc_cycle=alloc_cycle)

    mshrs.complete = stuck_complete  # type: ignore[method-assign]


def inject_dropped_bus_grant(memory: "MemorySystem", *, after_transfers: int = 1) -> None:
    """From the ``after_transfers``-th transfer on, the chip bus "grants"
    a zero-length window without booking any occupancy.

    Fill data would arrive the instant it was requested -- the causality
    invariant in the backside path raises
    :class:`~repro.robustness.errors.SimulationInvariantError`.
    """
    from repro.memory.bus import Transfer

    bus = memory.backside.chip_bus
    original = bus.transfer
    transfers = 0

    def dropped_transfer(cycle: int, nbytes: int) -> Transfer:
        nonlocal transfers
        transfers += 1
        if transfers >= after_transfers:
            return Transfer(start_cycle=cycle, done_cycle=cycle)
        return original(cycle, nbytes)

    bus.transfer = dropped_transfer  # type: ignore[method-assign]


def inject_lost_port_release(memory: "MemorySystem", *, mode: str = "hold") -> None:
    """Break the cache-port arbiter's reservation bookkeeping.

    ``mode="hold"``: every port's release is lost -- reservations are
    held forever, the next access is granted in the far future, and the
    watchdog raises :class:`~repro.robustness.errors.DeadlockError`.

    ``mode="regrant"``: the arbiter forgets each booking right after
    granting it, so the same port cycle is handed out repeatedly; the
    per-cycle grant-capacity invariant raises
    :class:`~repro.robustness.errors.SimulationInvariantError`.
    """
    arbiter = memory.arbiter
    if mode == "hold":
        arbiter._next_free[:] = [FAR_FUTURE] * len(arbiter._next_free)
        return
    if mode == "regrant":
        original = arbiter.reserve

        def forgetful_reserve(line: int, cycle: int) -> int:
            snapshot = list(arbiter._next_free)
            start = original(line, cycle)
            arbiter._next_free[:] = snapshot  # the booking is lost
            return start

        arbiter.reserve = forgetful_reserve  # type: ignore[method-assign]
        return
    raise ValueError(f"unknown lost-port-release mode {mode!r}")


def inject_corrupt_lru(memory: "MemorySystem", *, phantom_dirty: bool = False) -> None:
    """Scramble the L1's replacement state behind the model's back.

    Duplicates the MRU way of the first populated set (or, with
    ``phantom_dirty``, marks a non-resident tag dirty).  The periodic
    structural audit raises
    :class:`~repro.robustness.errors.SimulationInvariantError`.
    """
    l1 = memory.l1
    for index, ways in enumerate(l1._ways):
        if ways:
            if phantom_dirty:
                phantom_line = ((max(ways) + 1) << l1._tag_shift) | index
                l1._dirty.add(phantom_line)
            else:
                ways.append(ways[0])
            return
    raise RuntimeError("cannot corrupt an empty cache; warm it first")
