"""Per-design-point wall-clock deadlines: bound how long a point may run.

The commit watchdog bounds stalls in *simulated* cycles; a deadline
bounds one design point's *wall clock*.  The two catch different
failure shapes: the watchdog sees a pipeline that stopped committing,
the deadline sees a simulation that is still "making progress" by its
own lights but will never finish inside any reasonable budget (a spin
the watchdog misses, a pathological configuration, a worker stuck in
warm-up).  The deadline is the last line of defense before a sweep
operator reaches for ``kill -9``.

Mechanics mirror the telemetry beacon: a process-wide active
:class:`Deadline` is installed around one simulation, the core's hot
loop hoists it once per run and pays a single ``is None`` test per
cycle when deadlines are off, and :meth:`Deadline.tick` rate-limits the
``time.monotonic()`` call behind a counter mask.  Expiry raises
:class:`~repro.robustness.errors.DeadlineExceededError`, which the
engine resolves as a ``timeout`` gap -- recorded in the ledger and
telemetry, never retried at reduced budget (a hung point already spent
its whole wall-clock budget; re-running a hang doubles the damage).

Configuration is one environment variable, ``REPRO_POINT_TIMEOUT``
(seconds, fractional allowed), set by the CLI's ``--point-timeout`` so
worker processes inherit it.  ``REPRO_POINT_GRACE`` tunes the extra
slack the *parent* grants a worker before declaring it wedged and
killing it (the cooperative in-worker check normally fires first).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.robustness.errors import DeadlineExceededError

#: Environment variable carrying the per-point wall-clock budget.
POINT_TIMEOUT_ENV = "REPRO_POINT_TIMEOUT"

#: Environment variable tuning the parent-side grace on top of the
#: budget before a silent worker is killed.
POINT_GRACE_ENV = "REPRO_POINT_GRACE"

#: Default parent-side grace (seconds) beyond the deadline.
DEFAULT_GRACE_SECONDS = 5.0

#: Hot-loop iterations between wall-clock reads inside ``tick``.
_TICK_MASK = 255


def configured_timeout() -> float | None:
    """The per-point budget from ``REPRO_POINT_TIMEOUT``, or ``None``.

    Unparsable or non-positive values disable the deadline rather than
    fail the run -- a deadline is protection, never a prerequisite.
    """
    raw = os.environ.get(POINT_TIMEOUT_ENV)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def grace_seconds() -> float:
    """Parent-side grace beyond the deadline before a worker is killed."""
    raw = os.environ.get(POINT_GRACE_ENV)
    if raw:
        try:
            value = float(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return DEFAULT_GRACE_SECONDS


class Deadline:
    """One wall-clock budget, armed at construction.

    ``clock`` is injectable for tests; production uses ``monotonic``.
    """

    __slots__ = ("seconds", "started", "_expires", "_clock", "_calls")

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if seconds <= 0:
            raise ValueError(f"deadline must be positive: {seconds}")
        self.seconds = seconds
        self._clock = clock
        self.started = clock()
        self._expires = self.started + seconds
        self._calls = 0

    def remaining(self) -> float:
        """Seconds left before expiry (negative once overdue)."""
        return self._expires - self._clock()

    def expired(self) -> bool:
        return self._clock() >= self._expires

    def check(self, cycle: int = 0) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        now = self._clock()
        if now < self._expires:
            return
        raise DeadlineExceededError(
            f"design point exceeded its {self.seconds:g}s wall-clock budget "
            f"({now - self.started:.1f}s elapsed at cycle {cycle}); "
            "the point is recorded as a timeout gap",
            seconds=self.seconds,
        )

    def tick(self, cycle: int = 0) -> None:
        """Hot-loop hook: counter-masked so the wall clock is read only
        once every ``_TICK_MASK + 1`` calls."""
        self._calls += 1
        if self._calls & _TICK_MASK:
            return
        self.check(cycle)


#: The process-wide active deadline; ``None`` = unbounded (the default).
_DEADLINE: Deadline | None = None


def active_deadline() -> Deadline | None:
    return _DEADLINE


def install_deadline(deadline: Deadline) -> None:
    global _DEADLINE
    _DEADLINE = deadline


def clear_deadline() -> None:
    global _DEADLINE
    _DEADLINE = None


@contextmanager
def point_deadline(seconds: float | None = None) -> Iterator[Deadline | None]:
    """Arm a deadline around one design-point simulation.

    ``seconds=None`` reads ``REPRO_POINT_TIMEOUT``; when that is unset
    too, nothing is installed and the enclosed code pays nothing.  The
    previous deadline (normally ``None``) is restored on exit, so
    nested scopes -- a retry inside a point -- each get a fresh budget.
    """
    global _DEADLINE
    budget = seconds if seconds is not None else configured_timeout()
    if budget is None:
        yield None
        return
    previous = _DEADLINE
    armed = Deadline(budget)
    _DEADLINE = armed
    try:
        yield armed
    finally:
        _DEADLINE = previous
