"""Result-analysis helpers: curve math and Amdahl's-law checks."""

from repro.analysis.amdahl import amdahl_speedup, implied_memory_fraction
from repro.analysis.ascii_chart import render_chart, render_miss_rate_chart
from repro.analysis.curves import (
    arithmetic_mean,
    best_size,
    crossover,
    geometric_mean,
    monotone_non_increasing,
    normalize,
    relative_change,
)

__all__ = [
    "amdahl_speedup",
    "implied_memory_fraction",
    "render_chart",
    "render_miss_rate_chart",
    "arithmetic_mean",
    "best_size",
    "crossover",
    "geometric_mean",
    "monotone_non_increasing",
    "normalize",
    "relative_change",
]
