"""Amdahl's-law sanity checks used in section 4.4.

The paper observes that shrinking the processor cycle time by 3x sped
tomcatv up by only 1.5x because roughly half its execution time is
spent in the memory system, and checks that against Amdahl's Law
[Henn96].  These helpers reproduce that arithmetic so experiments can
validate their own results the same way.
"""

from __future__ import annotations


def amdahl_speedup(enhanced_fraction: float, enhancement: float) -> float:
    """Overall speedup when ``enhanced_fraction`` of time speeds up by
    ``enhancement``x."""
    if not 0.0 <= enhanced_fraction <= 1.0:
        raise ValueError("enhanced fraction must be in [0, 1]")
    if enhancement <= 0:
        raise ValueError("enhancement must be positive")
    return 1.0 / ((1.0 - enhanced_fraction) + enhanced_fraction / enhancement)


def implied_memory_fraction(clock_speedup: float, observed_speedup: float) -> float:
    """Invert Amdahl: the fraction *not* sped up by a faster clock.

    The paper's example: a 3x clock speedup yielding a 1.5x overall
    speedup implies half the time is memory-bound (not clock-scaled).
    """
    if clock_speedup <= 1.0:
        raise ValueError("clock speedup must exceed 1")
    if not 1.0 <= observed_speedup <= clock_speedup:
        raise ValueError(
            "observed speedup must lie between 1 and the clock speedup"
        )
    # observed = 1 / (m + (1 - m)/clock)  =>  solve for memory fraction m
    return (clock_speedup / observed_speedup - 1.0) / (clock_speedup - 1.0)
