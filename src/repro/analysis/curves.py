"""Curve utilities for interpreting design-space results."""

from __future__ import annotations

from typing import Sequence


def normalize(values: Sequence[float], reference: float) -> list[float]:
    """Divide a series by a reference value (Figure 9 normalization)."""
    if reference == 0:
        raise ValueError("reference must be nonzero")
    return [value / reference for value in values]


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("need at least one value")
    return sum(values) / len(values)


def crossover(
    xs: Sequence[float],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> float | None:
    """The x where curve A first crosses curve B (linear interpolation).

    Used to locate points like "below 25 FO4 a pipelined cache is always
    the best performer".  Returns ``None`` when the curves do not cross.
    """
    if not (len(xs) == len(series_a) == len(series_b)):
        raise ValueError("series lengths must match")
    for i in range(1, len(xs)):
        d0 = series_a[i - 1] - series_b[i - 1]
        d1 = series_a[i] - series_b[i]
        if d0 == 0:
            return xs[i - 1]
        if d0 * d1 < 0:
            t = d0 / (d0 - d1)
            return xs[i - 1] + t * (xs[i] - xs[i - 1])
    if len(xs) and series_a[-1] == series_b[-1]:
        return xs[-1]
    return None


def relative_change(before: float, after: float) -> float:
    """(after - before) / before, guarded."""
    if before == 0:
        raise ValueError("before must be nonzero")
    return (after - before) / before


def best_size(points: Sequence[tuple[int, float]]) -> int:
    """The cache size with the highest metric in a (size, value) series."""
    if not points:
        raise ValueError("empty series")
    return max(points, key=lambda p: p[1])[0]


def monotone_non_increasing(
    values: Sequence[float], tolerance: float = 0.0
) -> bool:
    """True when a series never rises by more than ``tolerance``.

    Miss-rate-vs-size curves from finite simulations jitter slightly;
    the tolerance absorbs that noise.
    """
    return all(
        later <= earlier + tolerance
        for earlier, later in zip(values, values[1:])
    )
