"""Minimal ASCII line charts for terminal-rendered figures.

The bench harness emits the paper's figures as numeric tables; these
helpers additionally draw them as fixed-width charts so a reader can
eyeball shapes (the FP miss-rate cliffs of Figure 3, the crossovers of
Figure 9) without leaving the terminal.
"""

from __future__ import annotations

from typing import Sequence

_MARKS = "o*x+#@%&"


def render_chart(
    series: dict[str, Sequence[float]],
    x_labels: Sequence[str],
    *,
    height: int = 12,
    title: str = "",
    y_format: str = "{:.2f}",
) -> str:
    """Render named series sharing an x axis as an ASCII chart.

    Each series gets a mark character; collisions show the later mark.
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(values) for values in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError("all series must match the x-label count")
    if height < 3:
        raise ValueError("height must be at least 3")

    all_values = [v for values in series.values() for v in values]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    span = hi - lo

    columns = len(x_labels)
    col_width = max(max(len(label) for label in x_labels) + 1, 6)
    grid = [[" "] * (columns * col_width) for _ in range(height)]

    def row_of(value: float) -> int:
        fraction = (value - lo) / span
        return min(height - 1, int(round((1.0 - fraction) * (height - 1))))

    for index, (name, values) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        for column, value in enumerate(values):
            grid[row_of(value)][column * col_width + col_width // 2] = mark

    lines = []
    if title:
        lines.append(title)
    y_width = max(len(y_format.format(hi)), len(y_format.format(lo)))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_format.format(hi)
        elif row_index == height - 1:
            label = y_format.format(lo)
        else:
            label = ""
        lines.append(f"{label:>{y_width}} |" + "".join(row))
    axis = " " * y_width + " +" + "-" * (columns * col_width)
    lines.append(axis)
    x_row = " " * (y_width + 2)
    for label in x_labels:
        x_row += label.center(col_width)
    lines.append(x_row)
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * (y_width + 2) + legend)
    return "\n".join(lines)


def render_miss_rate_chart(
    curves: dict[str, list[tuple[int, float]]],
    benchmarks: Sequence[str],
    title: str = "misses per instruction vs cache size",
) -> str:
    """Figure-3-style chart for a subset of benchmarks."""
    missing = [name for name in benchmarks if name not in curves]
    if missing:
        raise KeyError(f"benchmarks not in curves: {missing}")
    sizes = [size for size, _ in curves[benchmarks[0]]]
    labels = [
        f"{size // (1024 * 1024)}M" if size >= 1024 * 1024 else f"{size // 1024}K"
        for size in sizes
    ]
    series = {
        name: [100 * miss for _, miss in curves[name]] for name in benchmarks
    }
    return render_chart(
        series, labels, title=title, y_format="{:.1f}%"
    )
