"""Plain-text rendering of figure/table data in the paper's layout."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.exec_time import ExecutionTimePoint

if TYPE_CHECKING:
    from repro.robustness.runner import FailureRecord


def _size_label(size_bytes: int) -> str:
    if size_bytes >= 1024 * 1024:
        return f"{size_bytes // (1024 * 1024)}M"
    return f"{size_bytes // 1024}K"


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_figure1(curves: dict[str, list[tuple[int, float]]]) -> str:
    sizes = [s for s, _ in next(iter(curves.values()))]
    headers = ["organization"] + [_size_label(s) for s in sizes]
    rows = [
        [label] + [f"{fo4:.1f}" for _, fo4 in points]
        for label, points in curves.items()
    ]
    return format_table(
        headers, rows, "Figure 1: cache access time (FO4) vs size"
    )


def render_figure2(sections: dict[str, dict[str, str]]) -> str:
    lines = ["Figure 2: processor and memory subsystem"]
    for section, fields in sections.items():
        lines.append(f"  [{section}]")
        for key, value in fields.items():
            lines.append(f"    {key}: {value}")
    return "\n".join(lines)


def render_table1(rows: list[dict[str, str]]) -> str:
    return format_table(
        ["benchmark", "group", "description"],
        [[r["benchmark"], r["group"], r["description"][:60]] for r in rows],
        "Table 1: the nine benchmarks",
    )


def render_table2(rows: list[dict]) -> str:
    return format_table(
        ["benchmark", "kernel%", "user%", "idle%", "load%", "store%"],
        [
            [
                r["benchmark"],
                f"{r['kernel_pct']:.1f}",
                f"{r['user_pct']:.1f}",
                f"{r['idle_pct']:.1f}",
                f"{r['load_pct']:.1f}",
                f"{r['store_pct']:.1f}",
            ]
            for r in rows
        ],
        "Table 2: execution-time and instruction-mix percentages",
    )


def render_figure3(curves: dict[str, list[tuple[int, float]]]) -> str:
    sizes = [s for s, _ in next(iter(curves.values()))]
    headers = ["benchmark"] + [_size_label(s) for s in sizes]
    rows = [
        [name] + [f"{miss * 100:.2f}%" for _, miss in points]
        for name, points in curves.items()
    ]
    return format_table(
        headers, rows, "Figure 3: misses per instruction vs cache size"
    )


def render_ipc_grid(
    data: dict[str, dict], axis_label: str, title: str
) -> str:
    """Render {benchmark: {(x, hit): ipc}} grids (Figures 4 and 5)."""
    rows = []
    for name, cells in data.items():
        xs = sorted({key[0] for key in cells})
        hits = sorted({key[1] for key in cells})
        for x in xs:
            rows.append(
                [name, str(x)]
                + [f"{cells[(x, hit)]:.3f}" for hit in hits]
            )
    hits = sorted({key[1] for cells in data.values() for key in cells})
    headers = ["benchmark", axis_label] + [f"{h}~ IPC" for h in hits]
    return format_table(headers, rows, title)


def render_figure6(data: dict[str, dict]) -> str:
    rows = []
    for name, cells in data.items():
        for style in ("banked", "duplicate"):
            for has_lb in (False, True):
                rows.append(
                    [name, style + (".LB" if has_lb else "")]
                    + [f"{cells[(style, has_lb, hit)]:.3f}" for hit in (1, 2, 3)]
                )
    return format_table(
        ["benchmark", "organization", "1~ IPC", "2~ IPC", "3~ IPC"],
        rows,
        "Figure 6: 32 KB banked/duplicate caches with and without a line buffer",
    )


def render_figure7(data: dict[str, dict]) -> str:
    rows = []
    for name, cells in data.items():
        for has_lb in (True, False):
            rows.append(
                [name, "LB" if has_lb else "no LB"]
                + [f"{cells[(hit, has_lb)]:.3f}" for hit in (6, 7, 8)]
            )
    return format_table(
        ["benchmark", "line buffer", "6~ IPC", "7~ IPC", "8~ IPC"],
        rows,
        "Figure 7: 4 MB DRAM cache with a 16 KB row-buffer first level",
    )


def render_figure8(data: dict[str, dict]) -> str:
    blocks = []
    for name, curves in data.items():
        rows = []
        for (style, hit), series in sorted(curves.items()):
            rows.append(
                [f"{hit}~ {style}"]
                + [f"{ipc:.3f}" for _, ipc in series]
            )
        sizes = [
            _size_label(s)
            for s, _ in max(curves.values(), key=len)
        ]
        blocks.append(
            format_table(
                ["organization"] + sizes,
                rows,
                f"Figure 8 ({name}): IPC vs cache size (line buffer everywhere)",
            )
        )
    return "\n\n".join(blocks)


def render_figure9(data: dict[str, list[ExecutionTimePoint]]) -> str:
    blocks = []
    for name, points in data.items():
        rows = [
            [
                f"{p.cycle_time_fo4:.0f}",
                f"{p.depth}~",
                _size_label(p.cache_size),
                f"{p.ipc:.3f}",
                f"{p.normalized_time:.3f}",
            ]
            for p in points
        ]
        blocks.append(
            format_table(
                ["FO4", "depth", "cache", "IPC", "normalized time"],
                rows,
                f"Figure 9 ({name}): normalized execution time vs cycle time",
            )
        )
    return "\n\n".join(blocks)


def render_failure_summary(records: "list[FailureRecord]") -> str:
    """Failure report for a resilient sweep run ('' when clean)."""
    if not records:
        return ""
    table = format_table(
        ["design point", "workload", "error", "attempts", "resolution"],
        [
            [r.label, r.workload, r.error_type, str(r.attempts), r.resolution]
            for r in records
        ],
        f"Failure summary: {len(records)} design point(s) hit an error",
    )
    details = []
    for r in records:
        details.append(f"* {r.label} / {r.workload} ({r.resolution}):")
        details.extend(f"    {line}" for line in r.message.splitlines())
    gaps = sum(1 for r in records if r.resolution == "gap")
    timeouts = sum(1 for r in records if r.resolution == "timeout")
    recovered = len(records) - gaps - timeouts
    tail = (
        f"{recovered} point(s) recovered at reduced budget, "
        f"{gaps + timeouts} left as gaps (IPC reported as NaN)"
    )
    if timeouts:
        tail += f", {timeouts} of them wall-clock timeouts"
    tail += "."
    return "\n".join([table, "", *details, "", tail])


def render_headlines(numbers: dict) -> str:
    lines = ["Headline numbers (sections 4-5)"]
    for upgrade, gain in numbers["port_gain"].items():
        lines.append(f"  ideal ports {upgrade}: {gain:+.1%} IPC")
    for name, losses in numbers["pipeline_loss"].items():
        lines.append(
            f"  pipelining {name}: 2~ {losses['2_cycles']:.1%}, "
            f"3~ {losses['3_cycles']:.1%} IPC loss"
        )
    for style, gain in numbers["line_buffer_gain"].items():
        lines.append(f"  line buffer with {style} cache (1~): {gain:+.1%}")
    for name, rec in numbers["lb_pipeline_recovery"].items():
        lines.append(f"  LB recovers {rec:.0%} of pipelining loss ({name})")
    lines.append(
        f"  DRAM hit-time sensitivity: {numbers['dram_loss_per_cycle']:.1%}/cycle"
    )
    return "\n".join(lines)
