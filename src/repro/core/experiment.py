"""Run one (cache organization, benchmark) design point end to end.

The paper simulates 100M+ instructions per point under MXS; a Python
cycle simulator cannot.  Instead each experiment:

1. generates the benchmark's reference stream and *functionally* warms
   the cache hierarchy over a long prefix (hundreds of thousands of
   instructions -- enough for the largest working sets to reach steady
   state);
2. runs the cycle-level out-of-order core over the next slice of the
   same stream, with a short timing warm-up before measurement.

Instruction budgets scale globally via the ``REPRO_SCALE`` environment
variable (e.g. ``REPRO_SCALE=4`` quadruples every budget) so the bench
harness can trade time for fidelity without code changes.
``REPRO_INSTRUCTIONS`` pins the *measured* instruction count to an
absolute value (applied after ``REPRO_SCALE``), for runs where the
measured window matters more than the warm-up proportions.

The simulation itself runs on the selected :mod:`repro.kernel` backend
(``--backend`` / ``REPRO_BACKEND``); all backends are result-identical,
so which one ran is provenance, not identity -- it is recorded on the
result but excluded from cache keys.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field, replace

from repro.cpu.config import ProcessorConfig
from repro.cpu.core import OutOfOrderCore
from repro.cpu.result import SimulationResult
from repro.memory.backside import BacksideConfig
from repro.memory.hierarchy import MemorySystem
from repro.core.organizations import CacheOrganization
from repro.robustness.runner import FailureLog, FailureRecord
from repro.workloads.catalog import benchmark
from repro.workloads.generator import WorkloadSpec

#: Accepted range for ``REPRO_SCALE``; values outside are clamped.
SCALE_MIN, SCALE_MAX = 0.01, 1000.0


def scale_factor() -> float:
    """Global instruction-budget multiplier from ``REPRO_SCALE``.

    Accepts any number in ``[0.01, 1000]`` (e.g. ``0.25`` for a quick
    look, ``4`` for higher fidelity).  Values outside that range are
    clamped, and anything unparsable or non-positive falls back to 1 --
    in every such case a :class:`RuntimeWarning` says so, instead of the
    old behavior of silently ignoring the setting.
    """
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return 1.0
    try:
        value = float(raw)
    except ValueError:
        warnings.warn(
            f"REPRO_SCALE={raw!r} is not a number; using 1.0",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1.0
    if value <= 0:
        warnings.warn(
            f"REPRO_SCALE={raw!r} must be positive; using 1.0",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1.0
    if not SCALE_MIN <= value <= SCALE_MAX:
        clamped = min(max(value, SCALE_MIN), SCALE_MAX)
        warnings.warn(
            f"REPRO_SCALE={raw!r} outside [{SCALE_MIN}, {SCALE_MAX}]; "
            f"clamped to {clamped}",
            RuntimeWarning,
            stacklevel=2,
        )
        return clamped
    return value


#: Floor for any measured-instruction budget, scaled or overridden.
MIN_INSTRUCTIONS = 1_000


def instructions_override() -> int | None:
    """Absolute measured-instruction override from ``REPRO_INSTRUCTIONS``.

    ``None`` when unset.  Unlike ``REPRO_SCALE`` (a multiplier over
    every budget) this pins the *measured* window to an exact count and
    leaves the warm-up budgets alone; it is applied after scaling, so
    setting both means "scale the warm-ups, pin the measurement".
    Unparsable or non-positive values warn and are ignored; small
    values clamp to the same floor as scaling.
    """
    raw = os.environ.get("REPRO_INSTRUCTIONS")
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"REPRO_INSTRUCTIONS={raw!r} is not an integer; ignoring",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    if value <= 0:
        warnings.warn(
            f"REPRO_INSTRUCTIONS={raw!r} must be positive; ignoring",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    if value < MIN_INSTRUCTIONS:
        warnings.warn(
            f"REPRO_INSTRUCTIONS={raw!r} below the {MIN_INSTRUCTIONS} "
            f"floor; clamped",
            RuntimeWarning,
            stacklevel=2,
        )
        return MIN_INSTRUCTIONS
    return value


@dataclass(frozen=True)
class ExperimentSettings:
    """Simulation budgets and machine parameters for one experiment."""

    instructions: int = 12_000  #: measured (committed) instructions
    timing_warmup: int = 2_000  #: cycle-simulated but unmeasured
    functional_warmup: int = 300_000  #: cache warm-up, no timing
    seed: int = 1
    cpu: ProcessorConfig = field(default_factory=ProcessorConfig)
    backside: BacksideConfig = field(default_factory=BacksideConfig)

    def scaled(self) -> "ExperimentSettings":
        factor = scale_factor()
        override = instructions_override()
        if factor == 1.0 and override is None:
            return self
        scaled = self
        if factor != 1.0:
            scaled = replace(
                scaled,
                instructions=max(
                    MIN_INSTRUCTIONS, int(scaled.instructions * factor)
                ),
                timing_warmup=int(scaled.timing_warmup * factor),
                functional_warmup=int(scaled.functional_warmup * factor),
            )
        if override is not None and override != scaled.instructions:
            scaled = replace(scaled, instructions=override)
        return scaled


def run_experiment(
    organization: CacheOrganization,
    workload: str | WorkloadSpec,
    settings: ExperimentSettings | None = None,
) -> SimulationResult:
    """Simulate one design point through the execution engine.

    Results are memoized per process and, when the engine is configured
    with a :class:`~repro.engine.store.ResultStore` (as the CLI does),
    persisted across processes.  Batched callers (figures, sweeps)
    should declare their points through
    :class:`~repro.engine.executor.ExecutionPlan` instead, which also
    enables parallel execution; this entry point stays for single
    points and executes in-process.

    Inside a :func:`~repro.robustness.runner.resilient_sweeps` context a
    failing point is retried at a reduced instruction budget and, if it
    still fails, returned as a ``failed`` sentinel result (IPC = NaN)
    with the error recorded in the active failure log -- one bad point
    never kills a whole sweep.  Outside the context errors propagate.
    """
    from repro.engine.executor import get_engine
    from repro.engine.key import ExperimentKey

    settings = (settings or ExperimentSettings()).scaled()
    spec = workload if isinstance(workload, WorkloadSpec) else benchmark(workload)
    key = ExperimentKey(organization, spec.name, settings)
    engine = get_engine()
    cached = engine.lookup(key, spec)
    if cached is not None:
        return cached
    return engine.run_point(key, spec)


def _simulate(
    organization: CacheOrganization,
    spec: WorkloadSpec,
    settings: ExperimentSettings,
) -> SimulationResult:
    """One uncached, unguarded simulation of a design point."""
    from repro import kernel
    from repro.robustness.chaos import ChaosPlan

    # Chaos directives (REPRO_CHAOS) ride the same path real faults
    # would; one env lookup per simulation when off.  Fault injection
    # targets the reference loop's extension points, so chaos runs
    # always take the reference backend.
    chaos = ChaosPlan.from_env()
    backend = (
        kernel.get_backend("reference")
        if chaos is not None
        else kernel.active_backend()
    )
    memory = MemorySystem(organization.memory_config(settings.backside))
    if chaos is not None:
        settings = chaos.prepare(memory, spec, settings)
    trace = backend.prepare(spec, memory, settings)
    core = OutOfOrderCore(settings.cpu, memory)
    if chaos is not None:
        chaos.arm(core, spec)
    result = backend.run(
        core,
        trace,
        settings.instructions,
        warmup_instructions=settings.timing_warmup,
    )
    result.backend = backend.name
    return result


def _failure_message(error: Exception, limit: int = 8) -> str:
    """First lines of an error (structured dumps can run to pages)."""
    lines = str(error).splitlines() or [repr(error)]
    head = lines[:limit]
    if len(lines) > limit:
        head.append(f"... ({len(lines) - limit} more lines)")
    return "\n".join(head)


def _emit_point_timeout(label: str, workload: str, message: str) -> None:
    from repro.observability import trace as obs_trace
    from repro.observability.events import POINT_TIMEOUT

    obs_trace.emit(
        POINT_TIMEOUT, 0, label=label, workload=workload, message=message
    )


def _retry_reduced(
    organization: CacheOrganization,
    spec: WorkloadSpec,
    settings: ExperimentSettings,
    log: FailureLog,
    error_type: str,
    message: str,
) -> SimulationResult:
    """Resilience tail after a failed first attempt: bounded, backed-off
    retries at a shrinking instruction budget, then a marked gap.

    Shared by the serial path and the parallel engine (where the first
    attempt happened inside a worker and arrives as ``error_type`` +
    ``message`` strings); retries always run in the calling process.

    A point that overran its wall-clock deadline skips retries entirely
    and becomes a ``timeout`` gap: it already consumed its whole budget,
    and re-running a hang -- even at reduced fidelity -- doubles the
    damage.  Ordinary failures back off exponentially between attempts
    (deterministic jitter seeded by the point label, so the failure path
    is as reproducible as the success path), each retry runs under its
    own fresh deadline, and the whole retry tail is bounded by the
    log's ``retry_budget_seconds`` wall clock.
    """
    from repro.robustness.deadline import point_deadline
    from repro.robustness.errors import DeadlineExceededError

    label = organization.label

    def timeout_gap(attempts: int, detail: str) -> SimulationResult:
        log.record(
            FailureRecord(
                label=label,
                workload=spec.name,
                error_type="DeadlineExceededError",
                message=detail,
                attempts=attempts,
                resolution="timeout",
            )
        )
        _emit_point_timeout(label, spec.name, detail)
        return SimulationResult(instructions=0, cycles=0, failed=True)

    if error_type == "DeadlineExceededError":
        return timeout_gap(1, message)

    attempts = 1
    reduced = settings
    seed = f"{label}/{spec.name}"
    retry_started = time.monotonic()
    for _ in range(log.retries):
        reduced = replace(
            reduced,
            instructions=max(1_000, reduced.instructions // log.budget_divisor),
            timing_warmup=reduced.timing_warmup // log.budget_divisor,
            functional_warmup=reduced.functional_warmup // log.budget_divisor,
        )
        attempts += 1
        delay = log.backoff(attempts, seed=seed)
        elapsed = time.monotonic() - retry_started
        if elapsed + delay > log.retry_budget_seconds:
            break  # retry wall clock exhausted; the gap below says so
        if delay > 0.0:
            time.sleep(delay)
        try:
            with point_deadline():
                result = _simulate(organization, spec, reduced)
        except DeadlineExceededError as error:
            return timeout_gap(attempts, _failure_message(error))
        except Exception:  # noqa: BLE001
            continue
        # Recovered at lower fidelity: usable, but never memoized under
        # the full-budget key and flagged in the summary.
        log.record(
            FailureRecord(
                label=label,
                workload=spec.name,
                error_type=error_type,
                message=message,
                attempts=attempts,
                resolution="recovered",
            )
        )
        return result

    log.record(
        FailureRecord(
            label=label,
            workload=spec.name,
            error_type=error_type,
            message=message,
            attempts=attempts,
            resolution="gap",
        )
    )
    return SimulationResult(instructions=0, cycles=0, failed=True)


def average_ipc(
    organization: CacheOrganization,
    workloads: tuple[str, ...],
    settings: ExperimentSettings | None = None,
) -> float:
    """Arithmetic mean IPC over a set of benchmarks (the paper's
    "average of the nine benchmarks").

    Failed (NaN) gap sentinels are excluded from the mean -- one bad
    point must not turn the whole average into NaN -- and the gap count
    is surfaced as a :class:`RuntimeWarning`.  Only when *every* point
    failed does the average itself report NaN.
    """
    from repro.engine.executor import ExecutionPlan

    if not workloads:
        raise ValueError("need at least one workload")
    plan = ExecutionPlan()
    keys = [plan.add(organization, name, settings) for name in workloads]
    plan.execute()
    results = [plan.resolve(key) for key in keys]
    valid = [result.ipc for result in results if not result.failed]
    gaps = len(results) - len(valid)
    if gaps:
        warnings.warn(
            f"average_ipc: {gaps} of {len(results)} design points failed; "
            f"averaging the remaining {len(valid)}",
            RuntimeWarning,
            stacklevel=2,
        )
    if not valid:
        return float("nan")
    return sum(valid) / len(valid)


def clear_cache() -> None:
    """Drop memoized experiment results (mainly for tests)."""
    from repro.engine.executor import get_engine

    get_engine().memo.clear()
