"""Run one (cache organization, benchmark) design point end to end.

The paper simulates 100M+ instructions per point under MXS; a Python
cycle simulator cannot.  Instead each experiment:

1. generates the benchmark's reference stream and *functionally* warms
   the cache hierarchy over a long prefix (hundreds of thousands of
   instructions -- enough for the largest working sets to reach steady
   state);
2. runs the cycle-level out-of-order core over the next slice of the
   same stream, with a short timing warm-up before measurement.

Instruction budgets scale globally via the ``REPRO_SCALE`` environment
variable (e.g. ``REPRO_SCALE=4`` quadruples every budget) so the bench
harness can trade time for fidelity without code changes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.cpu.config import ProcessorConfig
from repro.cpu.core import OutOfOrderCore
from repro.cpu.result import SimulationResult
from repro.memory.backside import BacksideConfig
from repro.memory.hierarchy import MemorySystem
from repro.core.organizations import CacheOrganization
from repro.workloads.catalog import benchmark
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec


def scale_factor() -> float:
    """Global instruction-budget multiplier from ``REPRO_SCALE``."""
    try:
        value = float(os.environ.get("REPRO_SCALE", "1"))
    except ValueError:
        return 1.0
    return max(value, 0.01)


@dataclass(frozen=True)
class ExperimentSettings:
    """Simulation budgets and machine parameters for one experiment."""

    instructions: int = 12_000  #: measured (committed) instructions
    timing_warmup: int = 2_000  #: cycle-simulated but unmeasured
    functional_warmup: int = 300_000  #: cache warm-up, no timing
    seed: int = 1
    cpu: ProcessorConfig = field(default_factory=ProcessorConfig)
    backside: BacksideConfig = field(default_factory=BacksideConfig)

    def scaled(self) -> "ExperimentSettings":
        factor = scale_factor()
        if factor == 1.0:
            return self
        return replace(
            self,
            instructions=max(1_000, int(self.instructions * factor)),
            timing_warmup=int(self.timing_warmup * factor),
            functional_warmup=int(self.functional_warmup * factor),
        )


def run_experiment(
    organization: CacheOrganization,
    workload: str | WorkloadSpec,
    settings: ExperimentSettings | None = None,
) -> SimulationResult:
    """Simulate one design point; results are memoized per process."""
    settings = (settings or ExperimentSettings()).scaled()
    spec = workload if isinstance(workload, WorkloadSpec) else benchmark(workload)
    key = (organization, spec.name, settings)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    generator = WorkloadGenerator(spec, settings.seed)
    memory = MemorySystem(organization.memory_config(settings.backside))
    if settings.functional_warmup > 0:
        # Steady state of a 100M+ instruction run: the second level
        # holds the footprint, the first level reflects recent traffic.
        memory.prefill_backside(generator.footprint_lines(memory.line_bytes))
        memory.warm(generator.memory_references(settings.functional_warmup))
    core = OutOfOrderCore(settings.cpu, memory)
    result = core.run(
        generator.instructions(),
        settings.instructions,
        warmup_instructions=settings.timing_warmup,
    )
    _CACHE[key] = result
    return result


def average_ipc(
    organization: CacheOrganization,
    workloads: tuple[str, ...],
    settings: ExperimentSettings | None = None,
) -> float:
    """Arithmetic mean IPC over a set of benchmarks (the paper's
    "average of the nine benchmarks")."""
    if not workloads:
        raise ValueError("need at least one workload")
    results = [run_experiment(organization, name, settings) for name in workloads]
    return sum(r.ipc for r in results) / len(results)


_CACHE: dict[tuple, SimulationResult] = {}


def clear_cache() -> None:
    """Drop memoized experiment results (mainly for tests)."""
    _CACHE.clear()
