"""Reproduction entry points for every table and figure in the paper.

Each ``figureN``/``tableN`` function returns plain data (dicts/lists of
rows or series) that :mod:`repro.core.reporting` renders as text and the
bench harness prints.  See DESIGN.md's experiment index for the mapping
and EXPERIMENTS.md for paper-vs-measured records.

Simulated figures declare their full design-point grid up front on an
:class:`~repro.engine.executor.ExecutionPlan` and execute it as one
batch, so the engine can deduplicate shared points, satisfy repeats
from its memo and the persistent result store, and fan the rest out
over worker processes when configured with ``--jobs N``.

Figures inherit per-design-point isolation from the engine when
generated inside a :func:`repro.robustness.runner.resilient_sweeps`
context (as the CLI does): a failed point renders as NaN rather than
aborting the figure.
"""

from __future__ import annotations

import itertools

from repro.core.exec_time import (
    FIGURE9_CYCLE_TIMES,
    ExecutionTimePoint,
    plan_execution_time_curves,
    resolve_execution_time_curves,
)
from repro.core.experiment import ExperimentSettings
from repro.engine.executor import ExecutionPlan
from repro.core.organizations import banked, dram_cache, duplicate, ideal_ports
from repro.memory.sram import SetAssociativeCache
from repro.timing import cacti
from repro.workloads.catalog import BENCHMARKS, REPRESENTATIVES, benchmark
from repro.workloads.generator import WorkloadGenerator

KB = 1024

#: Primary-cache sizes studied (Figures 3 and 8): 4 KB .. 1 MB.
CACHE_SIZES = tuple(2**k * KB for k in range(2, 11))


# ---------------------------------------------------------------------------
# Figure 1 -- cache access times
# ---------------------------------------------------------------------------


def figure1() -> dict[str, list[tuple[int, float]]]:
    """Access times (FO4) for single-ported and eight-way banked caches."""
    return cacti.figure1_curves()


# ---------------------------------------------------------------------------
# Figure 2 -- the processor and memory subsystem description
# ---------------------------------------------------------------------------


def figure2() -> dict[str, dict[str, str]]:
    """The simulated machine, as the paper's Figure 2 lists it.

    Assembled from the live default configurations rather than written
    out by hand, so it cannot drift from what the code simulates.
    """
    from repro.cpu.config import ProcessorConfig
    from repro.memory.backside import BacksideConfig
    from repro.timing.process import REFERENCE_CLOCK_MHZ

    cpu = ProcessorConfig()
    backside = BacksideConfig()
    return {
        "processor": {
            "issue": f"{cpu.issue_width} issue dynamic superscalar",
            "latencies": "R10000 instruction latencies",
            "window": f"{cpu.window_size} entry instruction window",
            "load/store buffer": f"{cpu.lsq_size} entries",
            "clock": f"{REFERENCE_CLOCK_MHZ:.0f} MHz",
            "branch prediction": (
                f"{cpu.branch_predictor}, {cpu.predictor_entries} entries"
            ),
        },
        "primary data cache": {
            "size": "4 KB - 1 MB (swept)",
            "hit time": "1-3 cycles, fully pipelined",
            "organization": "two-way set-associative, 32 B lines",
            "mshrs": "4 (lockup-free)",
            "instruction cache": "perfect, one cycle",
        },
        "secondary cache": {
            "size": f"{backside.l2_size // (1024 * 1024)} MB",
            "hit time": f"{backside.l2_hit_cycles} cycles (50 ns)",
            "organization": (
                f"{backside.l2_assoc}-way set-associative, "
                f"{backside.l2_line} B lines"
            ),
            "bus": "2.5 GB/s peak to the processor",
        },
        "main memory": {
            "access time": f"{backside.memory_cycles} cycles (300 ns)",
            "bus": "1.6 GB/s peak to the L2",
        },
    }


# ---------------------------------------------------------------------------
# Tables 1 and 2 -- the benchmarks
# ---------------------------------------------------------------------------


def table1() -> list[dict[str, str]]:
    """Benchmark names, groups, and descriptions."""
    return [
        {"benchmark": spec.name, "group": spec.group, "description": spec.description}
        for spec in BENCHMARKS.values()
    ]


def table2(sample_instructions: int = 40_000, seed: int = 1) -> list[dict]:
    """Execution-time percentages and measured load/store mix.

    Kernel/idle splits come from the workload model (they are inputs,
    matching the paper's Table 2); load/store percentages are *measured*
    from a generated instruction sample so the table validates that the
    generators honor their specs.
    """
    rows = []
    for spec in BENCHMARKS.values():
        counts: dict[str, int] = {}
        stream = WorkloadGenerator(spec, seed).instructions()
        for mop in itertools.islice(stream, sample_instructions):
            counts[mop.op.name] = counts.get(mop.op.name, 0) + 1
        non_idle = 1.0 - spec.idle_fraction
        rows.append(
            {
                "benchmark": spec.name,
                "kernel_pct": 100 * spec.kernel_fraction * non_idle,
                "user_pct": 100 * (1 - spec.kernel_fraction) * non_idle,
                "idle_pct": 100 * spec.idle_fraction,
                "load_pct": 100 * counts.get("LOAD", 0) / sample_instructions,
                "store_pct": 100 * counts.get("STORE", 0) / sample_instructions,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 3 -- miss rates per instruction vs cache size
# ---------------------------------------------------------------------------


def figure3(
    sizes: tuple[int, ...] = CACHE_SIZES,
    *,
    instructions: int = 250_000,
    warmup_instructions: int = 250_000,
    seed: int = 1,
    benchmarks: tuple[str, ...] | None = None,
) -> dict[str, list[tuple[int, float]]]:
    """Misses per instruction for single-ported two-way 32 B-line caches.

    Purely functional simulation (no timing), so generous instruction
    counts are affordable; the warm-up prefix lets the large floating
    point working sets reach steady state before measurement.
    """
    names = benchmarks or tuple(BENCHMARKS)
    curves: dict[str, list[tuple[int, float]]] = {}
    for name in names:
        generator = WorkloadGenerator(benchmark(name), seed)
        warm_refs = generator.memory_references(warmup_instructions)
        refs = generator.memory_references(instructions)
        series = []
        for size in sizes:
            cache = SetAssociativeCache(size, 2, 32)
            for is_store, address in warm_refs:
                if not cache.lookup(address >> 5, write=is_store):
                    cache.fill(address >> 5, dirty=is_store)
            misses = 0
            for is_store, address in refs:
                if not cache.lookup(address >> 5, write=is_store):
                    misses += 1
                    cache.fill(address >> 5, dirty=is_store)
            series.append((size, misses / instructions))
        curves[name] = series
    return curves


# ---------------------------------------------------------------------------
# Figure 4 -- ideal multi-cycle multi-ported 32 KB caches
# ---------------------------------------------------------------------------


def figure4(
    benchmarks: tuple[str, ...] = REPRESENTATIVES,
    ports: tuple[int, ...] = (1, 2, 3, 4),
    hit_times: tuple[int, ...] = (1, 2, 3),
    settings: ExperimentSettings | None = None,
) -> dict[str, dict[tuple[int, int], float]]:
    """IPC[benchmark][(ports, hit_cycles)] for ideal-ported 32 KB caches."""
    plan = ExecutionPlan()
    keys = {
        (name, n_ports, hit): plan.add(
            ideal_ports(32 * KB, ports=n_ports, hit_cycles=hit), name, settings
        )
        for name in benchmarks
        for n_ports in ports
        for hit in hit_times
    }
    plan.execute()
    results: dict[str, dict[tuple[int, int], float]] = {
        name: {} for name in benchmarks
    }
    for (name, n_ports, hit), key in keys.items():
        results[name][(n_ports, hit)] = plan.ipc(key)
    return results


# ---------------------------------------------------------------------------
# Figure 5 -- banked multi-cycle 32 KB caches
# ---------------------------------------------------------------------------


def figure5(
    benchmarks: tuple[str, ...] = REPRESENTATIVES,
    bank_counts: tuple[int, ...] = (1, 2, 4, 8, 128),
    hit_times: tuple[int, ...] = (1, 2, 3),
    settings: ExperimentSettings | None = None,
) -> dict[str, dict[tuple[int, int], float]]:
    """IPC[benchmark][(banks, hit_cycles)] for banked 32 KB caches."""
    plan = ExecutionPlan()
    keys = {
        (name, banks_n, hit): plan.add(
            banked(32 * KB, banks=banks_n, hit_cycles=hit), name, settings
        )
        for name in benchmarks
        for banks_n in bank_counts
        for hit in hit_times
    }
    plan.execute()
    results: dict[str, dict[tuple[int, int], float]] = {
        name: {} for name in benchmarks
    }
    for (name, banks_n, hit), key in keys.items():
        results[name][(banks_n, hit)] = plan.ipc(key)
    return results


# ---------------------------------------------------------------------------
# Figure 6 -- line buffer with banked and duplicate caches
# ---------------------------------------------------------------------------


def figure6(
    benchmarks: tuple[str, ...] = REPRESENTATIVES,
    hit_times: tuple[int, ...] = (1, 2, 3),
    settings: ExperimentSettings | None = None,
) -> dict[str, dict[tuple[str, bool, int], float]]:
    """IPC[benchmark][(organization, line_buffer, hit_cycles)].

    Organizations are the paper's two practical ones: eight-way banked
    and duplicate, each with and without a line buffer.
    """
    make = {"banked": banked, "duplicate": duplicate}
    plan = ExecutionPlan()
    keys = {
        (name, style, has_lb, hit): plan.add(
            make[style](32 * KB, hit_cycles=hit, line_buffer=has_lb),
            name,
            settings,
        )
        for name in benchmarks
        for style in ("banked", "duplicate")
        for has_lb in (False, True)
        for hit in hit_times
    }
    plan.execute()
    results: dict[str, dict[tuple[str, bool, int], float]] = {
        name: {} for name in benchmarks
    }
    for (name, style, has_lb, hit), key in keys.items():
        results[name][(style, has_lb, hit)] = plan.ipc(key)
    return results


# ---------------------------------------------------------------------------
# Figure 7 -- DRAM caches
# ---------------------------------------------------------------------------


def figure7(
    benchmarks: tuple[str, ...] = REPRESENTATIVES,
    dram_hit_times: tuple[int, ...] = (6, 7, 8),
    settings: ExperimentSettings | None = None,
) -> dict[str, dict[tuple[int, bool], float]]:
    """IPC[benchmark][(dram_hit_cycles, line_buffer)] for the 4 MB DRAM
    cache with its 16 KB row-buffer first level."""
    plan = ExecutionPlan()
    keys = {
        (name, hit, has_lb): plan.add(
            dram_cache(dram_hit_cycles=hit, line_buffer=has_lb), name, settings
        )
        for name in benchmarks
        for hit in dram_hit_times
        for has_lb in (True, False)
    }
    plan.execute()
    results: dict[str, dict[tuple[int, bool], float]] = {
        name: {} for name in benchmarks
    }
    for (name, hit, has_lb), key in keys.items():
        results[name][(hit, has_lb)] = plan.ipc(key)
    return results


# ---------------------------------------------------------------------------
# Figure 8 -- the full design space (with line buffers)
# ---------------------------------------------------------------------------


def figure8(
    benchmarks: tuple[str, ...] = REPRESENTATIVES,
    sizes: tuple[int, ...] = CACHE_SIZES,
    hit_times: tuple[int, ...] = (1, 2, 3),
    settings: ExperimentSettings | None = None,
    include_average: bool = True,
) -> dict[str, dict[tuple[str, int], list[tuple[int, float]]]]:
    """IPC-vs-size curves for duplicate and banked caches with a line
    buffer, plus the six-cycle DRAM point.

    Returns ``{benchmark: {(style, hit): [(size, ipc), ...]}}`` where
    style is "duplicate" or "banked"; the DRAM point appears under the
    pseudo-style ``("dram", 6)`` with the DRAM cache capacity as size.
    An ``"average"`` pseudo-benchmark is added when requested.
    """
    make = {"duplicate": duplicate, "banked": banked}
    dram_org = dram_cache(dram_hit_cycles=6, line_buffer=True)
    plan = ExecutionPlan()
    sram_keys = {
        (name, style, hit, size): plan.add(
            make[style](size, hit_cycles=hit, line_buffer=True), name, settings
        )
        for name in benchmarks
        for style in ("duplicate", "banked")
        for hit in hit_times
        for size in sizes
    }
    dram_keys = {name: plan.add(dram_org, name, settings) for name in benchmarks}
    plan.execute()
    results: dict[str, dict[tuple[str, int], list[tuple[int, float]]]] = {}
    for name in benchmarks:
        curves: dict[tuple[str, int], list[tuple[int, float]]] = {}
        for style in ("duplicate", "banked"):
            for hit in hit_times:
                curves[(style, hit)] = [
                    (size, plan.ipc(sram_keys[(name, style, hit, size)]))
                    for size in sizes
                ]
        curves[("dram", 6)] = [
            (dram_org.dram.dram_size, plan.ipc(dram_keys[name]))
        ]
        results[name] = curves
    if include_average and len(results) > 1:
        results["average"] = _average_curves(results)
    return results


def _average_curves(
    per_benchmark: dict[str, dict[tuple[str, int], list[tuple[int, float]]]],
) -> dict[tuple[str, int], list[tuple[int, float]]]:
    names = [n for n in per_benchmark if n != "average"]
    averaged: dict[tuple[str, int], list[tuple[int, float]]] = {}
    for key in per_benchmark[names[0]]:
        series_len = len(per_benchmark[names[0]][key])
        points = []
        for i in range(series_len):
            size = per_benchmark[names[0]][key][i][0]
            mean = sum(per_benchmark[n][key][i][1] for n in names) / len(names)
            points.append((size, mean))
        averaged[key] = points
    return averaged


# ---------------------------------------------------------------------------
# Figure 9 -- normalized execution time vs processor cycle time
# ---------------------------------------------------------------------------


def figure9(
    benchmarks: tuple[str, ...] = REPRESENTATIVES,
    cycle_times: tuple[float, ...] = FIGURE9_CYCLE_TIMES,
    settings: ExperimentSettings | None = None,
) -> dict[str, list[ExecutionTimePoint]]:
    """Normalized execution-time curves for duplicate caches with a
    line buffer at pipeline depths 1-3."""
    plan = ExecutionPlan()
    planned = {
        name: plan_execution_time_curves(plan, name, cycle_times, settings=settings)
        for name in benchmarks
    }
    plan.execute()
    return {
        name: resolve_execution_time_curves(plan, planned[name])
        for name in benchmarks
    }


# ---------------------------------------------------------------------------
# Headline numbers from sections 4 and 5
# ---------------------------------------------------------------------------


def headline_numbers(
    benchmarks: tuple[str, ...] = REPRESENTATIVES,
    settings: ExperimentSettings | None = None,
) -> dict[str, dict]:
    """The scalar claims of the conclusion, measured on our stack.

    * port scaling: IPC gain for 1->2, 2->3, 3->4 ideal ports (32 KB);
    * pipelining loss: IPC drop per extra hit cycle (2 ideal ports);
    * line-buffer gain at one cycle for duplicate and banked caches;
    * DRAM sensitivity: average IPC drop per extra DRAM hit cycle.
    """
    fig4 = figure4(benchmarks, settings=settings)
    fig6 = figure6(benchmarks, settings=settings)
    fig7 = figure7(benchmarks, settings=settings)

    def mean(values):
        values = list(values)
        return sum(values) / len(values)

    port_gain = {}
    for upgrade in ((1, 2), (2, 3), (3, 4)):
        gains = []
        for name in benchmarks:
            before = fig4[name][(upgrade[0], 1)]
            after = fig4[name][(upgrade[1], 1)]
            gains.append(after / before - 1)
        port_gain[f"{upgrade[0]}->{upgrade[1]}"] = mean(gains)

    pipeline_loss = {}
    for name in benchmarks:
        base = fig4[name][(2, 1)]
        pipeline_loss[name] = {
            "2_cycles": 1 - fig4[name][(2, 2)] / base,
            "3_cycles": 1 - fig4[name][(2, 3)] / base,
        }

    line_buffer_gain = {}
    for style in ("duplicate", "banked"):
        line_buffer_gain[style] = mean(
            fig6[name][(style, True, 1)] / fig6[name][(style, False, 1)] - 1
            for name in benchmarks
        )

    lb_pipeline_recovery = {}
    for name in benchmarks:
        drop_without = (
            fig6[name][("duplicate", False, 1)] - fig6[name][("duplicate", False, 3)]
        )
        drop_with = (
            fig6[name][("duplicate", True, 1)] - fig6[name][("duplicate", True, 3)]
        )
        if drop_without > 0:
            lb_pipeline_recovery[name] = 1 - drop_with / drop_without

    dram_loss_per_cycle = mean(
        (fig7[name][(6, True)] - fig7[name][(8, True)]) / 2 / fig7[name][(6, True)]
        for name in benchmarks
    )

    return {
        "port_gain": port_gain,
        "pipeline_loss": pipeline_loss,
        "line_buffer_gain": line_buffer_gain,
        "lb_pipeline_recovery": lb_pipeline_recovery,
        "dram_loss_per_cycle": dram_loss_per_cycle,
    }
