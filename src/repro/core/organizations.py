"""Cache-organization descriptors: points in the paper's design space.

An organization fixes everything section 2 varies: primary cache size,
hit time (pipeline depth), how ports are provided (ideal multi-port,
external banking, or cache duplication), whether the load/store unit
has a line buffer, and whether the cache is the SRAM + L2 system or the
on-chip DRAM cache with a row-buffer first level.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.memory.backside import BacksideConfig
from repro.memory.dram_cache import DramCacheConfig
from repro.memory.hierarchy import MemoryConfig
from repro.timing import cacti

KB = 1024


@dataclass(frozen=True)
class CacheOrganization:
    """One design point evaluated by the study."""

    size_bytes: int = 32 * KB
    hit_cycles: int = 1
    port_policy: str = "ideal"  #: "ideal" | "banked" | "duplicate"
    ports: int = 2
    banks: int = 8
    bank_interleave: str = "line"
    line_buffer: bool = False
    line_buffer_entries: int = 32
    dram: DramCacheConfig | None = None
    # Extension knobs beyond the paper's main axes (ablation studies):
    associativity: int = 2
    line_bytes: int = 32
    mshrs: int = 4
    write_policy: str = "write-back"
    write_allocate: bool = True
    victim_entries: int = 0
    next_line_prefetch: bool = False

    @property
    def label(self) -> str:
        """Short display label in the paper's style, e.g. ``2~ duplicate 32K``."""
        if self.dram is not None:
            base = (
                f"{self.dram.dram_hit_cycles}~ DRAM "
                f"{self.dram.dram_size // (1024 * KB)}M"
            )
        elif self.port_policy == "ideal":
            base = f"{self.hit_cycles}~ {self.ports}-port {self.size_bytes // KB}K"
        elif self.port_policy == "banked":
            base = (
                f"{self.hit_cycles}~ {self.banks}-way banked "
                f"{self.size_bytes // KB}K"
            )
        else:
            base = f"{self.hit_cycles}~ duplicate {self.size_bytes // KB}K"
        return base + (" +LB" if self.line_buffer else "")

    def access_time_fo4(self) -> float:
        """Cache access time per Figure 1 (banked vs single-ported).

        DRAM organizations have no SRAM access time; callers comparing
        cycle times should treat the row-buffer cache like a 16 KB SRAM.
        """
        if self.dram is not None:
            return cacti.single_ported_access_fo4(self.dram.row_cache_size)
        if self.port_policy == "banked":
            return cacti.access_time(
                self.size_bytes,
                associativity=self.associativity,
                block_bytes=self.line_bytes,
                min_banks=self.banks,
            ).access_fo4
        # Ideal ports are an abstraction; duplicate caches keep the
        # single-ported access time (section 2.1).
        return cacti.access_time(
            self.size_bytes,
            associativity=self.associativity,
            block_bytes=self.line_bytes,
        ).access_fo4

    def memory_config(
        self, backside: BacksideConfig | None = None
    ) -> MemoryConfig:
        """Materialize the :class:`MemoryConfig` for this design point."""
        return MemoryConfig(
            l1_size=self.size_bytes,
            l1_assoc=self.associativity,
            l1_line=self.line_bytes,
            l1_hit_cycles=self.hit_cycles,
            port_policy=self.port_policy,
            ports=self.ports,
            banks=self.banks,
            bank_interleave=self.bank_interleave,
            line_buffer=self.line_buffer,
            line_buffer_entries=self.line_buffer_entries,
            mshrs=self.mshrs,
            write_policy=self.write_policy,
            write_allocate=self.write_allocate,
            victim_entries=self.victim_entries,
            next_line_prefetch=self.next_line_prefetch,
            backside=backside or BacksideConfig(),
            dram=self.dram,
        )

    def with_line_buffer(self, enabled: bool = True) -> "CacheOrganization":
        return replace(self, line_buffer=enabled)

    def resized(self, size_bytes: int) -> "CacheOrganization":
        return replace(self, size_bytes=size_bytes)

    def pipelined(self, hit_cycles: int) -> "CacheOrganization":
        return replace(self, hit_cycles=hit_cycles)


# ---------------------------------------------------------------------------
# Constructors for the organizations the paper names
# ---------------------------------------------------------------------------


def ideal_ports(
    size_bytes: int = 32 * KB,
    ports: int = 2,
    hit_cycles: int = 1,
    line_buffer: bool = False,
) -> CacheOrganization:
    """An ideal multi-ported cache (section 2.1's idealization)."""
    return CacheOrganization(
        size_bytes=size_bytes,
        hit_cycles=hit_cycles,
        port_policy="ideal",
        ports=ports,
        line_buffer=line_buffer,
    )


def banked(
    size_bytes: int = 32 * KB,
    banks: int = 8,
    hit_cycles: int = 1,
    line_buffer: bool = False,
) -> CacheOrganization:
    """An externally banked cache (MIPS R10000 style)."""
    return CacheOrganization(
        size_bytes=size_bytes,
        hit_cycles=hit_cycles,
        port_policy="banked",
        banks=banks,
        line_buffer=line_buffer,
    )


def duplicate(
    size_bytes: int = 32 * KB,
    hit_cycles: int = 1,
    line_buffer: bool = False,
) -> CacheOrganization:
    """A duplicated (dual-copy) cache (DEC Alpha 21164 style)."""
    return CacheOrganization(
        size_bytes=size_bytes,
        hit_cycles=hit_cycles,
        port_policy="duplicate",
        line_buffer=line_buffer,
    )


def dram_cache(
    dram_hit_cycles: int = 6,
    line_buffer: bool = False,
    dram_size: int = 4 * 1024 * KB,
) -> CacheOrganization:
    """The 4 MB on-chip DRAM cache with a 16 KB row-buffer L1 (section 2.4).

    The row-buffer cache is eight-way banked with a one-cycle hit time;
    there is no off-chip L2 in this mode.
    """
    return CacheOrganization(
        size_bytes=16 * KB,  # replaced by the row-buffer cache geometry
        hit_cycles=1,
        port_policy="banked",
        banks=8,
        line_buffer=line_buffer,
        dram=DramCacheConfig(
            dram_size=dram_size, dram_hit_cycles=dram_hit_cycles
        ),
    )
