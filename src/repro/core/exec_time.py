"""Execution-time analysis across processor cycle times (Figure 9).

IPC alone ignores that bigger caches slow the clock.  Figure 9 combines
both: for each processor cycle time T (in FO4) and cache pipeline depth
d in 1..3, take the *largest* duplicate cache realizable per the cacti
model, re-scale the physically fixed L2 (50 ns) and memory (300 ns)
latencies and bus bandwidths into cycles of T, simulate, and report
execution time = cycles x T normalized to the paper's reference point
(a 10 FO4 processor with a 32 KB three-cycle pipelined cache).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.experiment import ExperimentSettings, run_experiment
from repro.core.organizations import duplicate
from repro.engine.executor import ExecutionPlan
from repro.engine.key import ExperimentKey
from repro.memory.backside import BacksideConfig
from repro.memory.bus import bytes_per_cycle
from repro.timing import pipelining
from repro.timing.process import (
    CHIP_TO_L2_BANDWIDTH,
    L2_ACCESS_NS,
    L2_TO_MEMORY_BANDWIDTH,
    MEMORY_ACCESS_NS,
    latency_in_cycles,
)

#: Cycle times spanned by Figure 9's x axis.
FIGURE9_CYCLE_TIMES = (10.0, 15.0, 20.0, 25.0, 30.0)

#: The normalization point: 10 FO4 clock, 32 KB three-cycle cache.
BASELINE_CYCLE_TIME = 10.0
BASELINE_SIZE = 32 * 1024
BASELINE_DEPTH = 3


@dataclass(frozen=True)
class ExecutionTimePoint:
    """One point on a Figure 9 curve."""

    benchmark: str
    cycle_time_fo4: float
    depth: int
    cache_size: int
    ipc: float
    execution_time_fo4: float
    normalized_time: float


def scaled_backside(cycle_time_fo4: float) -> BacksideConfig:
    """Backside latencies/bandwidths re-expressed for a new clock.

    The L2 and memory are physical devices: 50 ns and 300 ns regardless
    of how fast the processor clocks, and the buses move a fixed number
    of bytes per *nanosecond*.
    """
    return BacksideConfig(
        l2_hit_cycles=latency_in_cycles(L2_ACCESS_NS, cycle_time_fo4),
        memory_cycles=latency_in_cycles(MEMORY_ACCESS_NS, cycle_time_fo4),
        chip_bus_bytes_per_cycle=bytes_per_cycle(
            CHIP_TO_L2_BANDWIDTH, cycle_time_fo4
        ),
        memory_bus_bytes_per_cycle=bytes_per_cycle(
            L2_TO_MEMORY_BANDWIDTH, cycle_time_fo4
        ),
    )


def baseline_time_fo4(
    workload: str, settings: ExperimentSettings | None = None
) -> float:
    """Execution time of the normalization reference for a benchmark."""
    settings = settings or ExperimentSettings()
    organization = duplicate(
        BASELINE_SIZE, hit_cycles=BASELINE_DEPTH, line_buffer=True
    )
    scaled = replace(settings, backside=scaled_backside(BASELINE_CYCLE_TIME))
    result = run_experiment(organization, workload, scaled)
    return result.execution_time_fo4(BASELINE_CYCLE_TIME)


@dataclass(frozen=True)
class PlannedCurves:
    """Keys for one benchmark's Figure 9 grid, awaiting execution."""

    workload: str
    baseline_key: ExperimentKey
    #: (cycle_time, depth, cache_size, key) per realizable point
    point_keys: tuple[tuple[float, int, int, ExperimentKey], ...]


def plan_execution_time_curves(
    plan: ExecutionPlan,
    workload: str,
    cycle_times: tuple[float, ...] = FIGURE9_CYCLE_TIMES,
    depths: tuple[int, ...] = (1, 2, 3),
    settings: ExperimentSettings | None = None,
) -> PlannedCurves:
    """Declare every realizable Figure 9 point for one benchmark.

    The backside latencies depend on the clock, so each cycle time is a
    distinct design point even at the same cache geometry.
    """
    settings = settings or ExperimentSettings()
    baseline_key = plan.add(
        duplicate(BASELINE_SIZE, hit_cycles=BASELINE_DEPTH, line_buffer=True),
        workload,
        replace(settings, backside=scaled_backside(BASELINE_CYCLE_TIME)),
    )
    point_keys = []
    for cycle_time in cycle_times:
        for depth in depths:
            fit = pipelining.max_cache_size(cycle_time, depth)
            if fit is None:
                continue
            key = plan.add(
                duplicate(fit.size_bytes, hit_cycles=depth, line_buffer=True),
                workload,
                replace(settings, backside=scaled_backside(cycle_time)),
            )
            point_keys.append((cycle_time, depth, fit.size_bytes, key))
    return PlannedCurves(workload, baseline_key, tuple(point_keys))


def resolve_execution_time_curves(
    plan: ExecutionPlan, planned: PlannedCurves
) -> list[ExecutionTimePoint]:
    """Materialize Figure 9 points from an executed plan."""
    baseline = plan.resolve(planned.baseline_key).execution_time_fo4(
        BASELINE_CYCLE_TIME
    )
    points: list[ExecutionTimePoint] = []
    for cycle_time, depth, cache_size, key in planned.point_keys:
        result = plan.resolve(key)
        time_fo4 = result.execution_time_fo4(cycle_time)
        points.append(
            ExecutionTimePoint(
                benchmark=planned.workload,
                cycle_time_fo4=cycle_time,
                depth=depth,
                cache_size=cache_size,
                ipc=result.ipc,
                execution_time_fo4=time_fo4,
                normalized_time=time_fo4 / baseline,
            )
        )
    return points


def execution_time_curves(
    workload: str,
    cycle_times: tuple[float, ...] = FIGURE9_CYCLE_TIMES,
    depths: tuple[int, ...] = (1, 2, 3),
    settings: ExperimentSettings | None = None,
) -> list[ExecutionTimePoint]:
    """All realizable Figure 9 points for one benchmark.

    Uses duplicate caches with a line buffer throughout -- section 4.4
    concludes those dominate, and Figure 9 plots only them.
    """
    plan = ExecutionPlan()
    planned = plan_execution_time_curves(
        plan, workload, cycle_times, depths, settings
    )
    plan.execute()
    return resolve_execution_time_curves(plan, planned)


def best_point(points: list[ExecutionTimePoint]) -> ExecutionTimePoint:
    """The minimum-execution-time design point of a curve set."""
    if not points:
        raise ValueError("no execution-time points supplied")
    return min(points, key=lambda p: p.normalized_time)
