"""Parameter sweeps and ablation studies over the design space.

The paper's figures fix several design choices (4 MSHRs, a 32-entry
line buffer, two-way associativity, write-back caches, line-interleaved
banks).  These sweeps quantify each choice on our stack -- the ablation
benches in ``benchmarks/test_ablations.py`` run them and assert the
expected directions:

* ``mshr_sweep`` -- lockup-free depth [Fark94]: how much memory-level
  parallelism do 1..8 MSHRs buy?
* ``line_buffer_size_sweep`` -- is 32 entries the right size [Wils96]?
* ``associativity_sweep`` -- direct-mapped vs 2/4-way at fixed size,
  including the section 4.4 comparison with Jouppi & Wilton: a two-way
  set-associative cache performs about like a direct-mapped cache of
  twice the size [Henn96].
* ``bank_interleave_sweep`` -- line vs page interleaving conflicts.
* ``write_policy_sweep`` -- write-back vs write-through(/no-allocate).
* ``victim_vs_line_buffer`` -- the two small-buffer remedies compared.

Every sweep declares its design points on an
:class:`~repro.engine.executor.ExecutionPlan` and executes them as one
batch, so the engine can deduplicate, reuse cached results, and run
points in parallel under ``--jobs N``.  Running a sweep inside a
:func:`repro.robustness.runner.resilient_sweeps` context gives it
per-point isolation: a failing point is retried at a reduced budget and
then reported as a gap (IPC = NaN) instead of killing the whole sweep.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.experiment import ExperimentSettings
from repro.core.organizations import banked, duplicate
from repro.cpu.config import ProcessorConfig
from repro.engine.executor import ExecutionPlan
from repro.memory.common import ServedBy

KB = 1024


def _resolve_grid(variants, workload, settings):
    """Plan ``{label: organization}``, execute, return ``{label: result}``."""
    plan = ExecutionPlan()
    keys = {
        label: plan.add(org, workload, settings) for label, org in variants.items()
    }
    plan.execute()
    return {label: plan.resolve(key) for label, key in keys.items()}


def mshr_sweep(
    workload: str,
    mshr_counts: tuple[int, ...] = (1, 2, 4, 8),
    settings: ExperimentSettings | None = None,
) -> dict[int, float]:
    """IPC vs number of MSHRs for the reference 32 KB duplicate cache."""
    base = duplicate(32 * KB, line_buffer=True)
    variants = {count: replace(base, mshrs=count) for count in mshr_counts}
    results = _resolve_grid(variants, workload, settings)
    return {count: result.ipc for count, result in results.items()}


def line_buffer_size_sweep(
    workload: str,
    entry_counts: tuple[int, ...] = (4, 8, 16, 32, 64),
    settings: ExperimentSettings | None = None,
) -> dict[int, tuple[float, float]]:
    """(IPC, line-buffer hit rate) vs buffer entries."""
    base = duplicate(32 * KB, line_buffer=True)
    variants = {
        entries: replace(base, line_buffer_entries=entries)
        for entries in entry_counts
    }
    results = _resolve_grid(variants, workload, settings)
    sized: dict[int, tuple[float, float]] = {}
    for entries, result in results.items():
        lb_hits = result.memory.served_by[ServedBy.LINE_BUFFER]
        hit_rate = lb_hits / max(1, result.memory.loads)
        sized[entries] = (result.ipc, hit_rate)
    return sized


def associativity_sweep(
    workload: str,
    sizes: tuple[int, ...] = (8 * KB, 16 * KB, 32 * KB, 64 * KB),
    ways: tuple[int, ...] = (1, 2, 4),
    settings: ExperimentSettings | None = None,
) -> dict[tuple[int, int], float]:
    """Miss rate for every (size, associativity) point (functional view
    folded through the timing run: reported from the measured window)."""
    variants = {
        (size, assoc): replace(duplicate(size, line_buffer=False), associativity=assoc)
        for size in sizes
        for assoc in ways
    }
    results = _resolve_grid(variants, workload, settings)
    return {point: result.memory.l1_miss_rate for point, result in results.items()}


def bank_interleave_sweep(
    workload: str,
    settings: ExperimentSettings | None = None,
) -> dict[str, tuple[float, float]]:
    """(IPC, avg load latency) for line- vs page-interleaved 8-bank caches."""
    variants = {
        interleave: replace(
            banked(32 * KB, line_buffer=True), bank_interleave=interleave
        )
        for interleave in ("line", "page")
    }
    results = _resolve_grid(variants, workload, settings)
    # Bank conflicts surface as longer average load latency.
    return {
        interleave: (result.ipc, result.memory.average_load_latency)
        for interleave, result in results.items()
    }


def write_policy_sweep(
    workload: str,
    settings: ExperimentSettings | None = None,
) -> dict[str, float]:
    """IPC for write-back, write-through, and write-through/no-allocate."""
    base = duplicate(32 * KB, line_buffer=True)
    variants = {
        "write-back": base,
        "write-through": replace(base, write_policy="write-through"),
        "write-through/no-allocate": replace(
            base, write_policy="write-through", write_allocate=False
        ),
    }
    results = _resolve_grid(variants, workload, settings)
    return {name: result.ipc for name, result in results.items()}


def victim_vs_line_buffer(
    workload: str,
    settings: ExperimentSettings | None = None,
    size: int = 8 * KB,
) -> dict[str, float]:
    """Compare the paper's line buffer against a victim cache [Joup90]
    at a conflict-prone small cache size, and their combination."""
    base = duplicate(size)
    variants = {
        "plain": base,
        "line-buffer": replace(base, line_buffer=True),
        "victim-cache": replace(base, victim_entries=8),
        "both": replace(base, line_buffer=True, victim_entries=8),
    }
    results = _resolve_grid(variants, workload, settings)
    return {name: result.ipc for name, result in results.items()}


def direct_mapped_equivalence(
    workload: str,
    size: int = 16 * KB,
    settings: ExperimentSettings | None = None,
) -> dict[str, float]:
    """Section 4.4 / [Henn96]: a two-way cache of size S misses about
    like a direct-mapped cache of size 2S.  Returns the three miss
    rates so the bench can check the sandwich ordering."""
    variants = {
        "direct_S": replace(duplicate(size), associativity=1),
        "twoway_S": duplicate(size),
        "direct_2S": replace(duplicate(2 * size), associativity=1),
    }
    results = _resolve_grid(variants, workload, settings)
    return {name: result.memory.l1_miss_rate for name, result in results.items()}


def prefetch_sweep(
    workloads: tuple[str, ...] = ("tomcatv", "database"),
    settings: ExperimentSettings | None = None,
) -> dict[str, dict[str, float]]:
    """Next-line prefetching [Joup90]: IPC with and without, per workload.

    Expectation: sequential codes (tomcatv) benefit; random-access codes
    (database) benefit little or lose to the wasted bus/MSHR traffic.
    """
    base = duplicate(32 * KB, line_buffer=True)
    prefetching = replace(base, next_line_prefetch=True)
    plan = ExecutionPlan()
    keys = {
        (name, mode): plan.add(org, name, settings)
        for name in workloads
        for mode, org in (("off", base), ("on", prefetching))
    }
    plan.execute()
    return {
        name: {
            "off": plan.ipc(keys[(name, "off")]),
            "on": plan.ipc(keys[(name, "on")]),
        }
        for name in workloads
    }


def window_size_sweep(
    workload: str,
    window_sizes: tuple[int, ...] = (16, 32, 64, 128),
    hit_cycles: int = 3,
    settings: ExperimentSettings | None = None,
) -> dict[int, float]:
    """How much multi-cycle-hit latency the dynamic window hides.

    Section 4.1 credits the dynamic superscalar processor with hiding a
    portion of the pipelined cache's latency; a larger instruction
    window hides more.  Sweeps the reorder window at a 3-cycle hit.
    """
    settings = settings or ExperimentSettings()
    org = duplicate(32 * KB, hit_cycles=hit_cycles, line_buffer=True)
    plan = ExecutionPlan()
    keys = {
        window: plan.add(
            org,
            workload,
            replace(settings, cpu=ProcessorConfig(window_size=window)),
        )
        for window in window_sizes
    }
    plan.execute()
    return {window: plan.ipc(key) for window, key in keys.items()}


def issue_width_sweep(
    workload: str,
    widths: tuple[int, ...] = (1, 2, 4, 8),
    settings: ExperimentSettings | None = None,
) -> dict[int, float]:
    """IPC vs machine width (fetch = issue = commit), 32 KB duplicate+LB."""
    settings = settings or ExperimentSettings()
    org = duplicate(32 * KB, line_buffer=True)
    plan = ExecutionPlan()
    keys = {
        width: plan.add(
            org,
            workload,
            replace(
                settings,
                cpu=ProcessorConfig(
                    fetch_width=width, issue_width=width, commit_width=width
                ),
            ),
        )
        for width in widths
    }
    plan.execute()
    return {width: plan.ipc(key) for width, key in keys.items()}


def line_size_sweep(
    workload: str,
    line_sizes: tuple[int, ...] = (16, 32, 64),
    settings: ExperimentSettings | None = None,
) -> dict[int, tuple[float, float]]:
    """(IPC, L1 miss rate) vs primary-cache line size at 32 KB.

    The paper fixes 32 B lines; this classic trade-off shows why:
    longer lines exploit spatial locality (fewer misses for streams)
    but cost transfer bandwidth and, for sparse access patterns,
    waste capacity.  The L1 line must not exceed the 64 B L2 line.
    """
    variants = {
        line: replace(duplicate(32 * KB, line_buffer=True), line_bytes=line)
        for line in line_sizes
    }
    results = _resolve_grid(variants, workload, settings)
    return {
        line: (result.ipc, result.memory.l1_miss_rate)
        for line, result in results.items()
    }


def fu_restriction_sweep(
    workloads: tuple[str, ...] = ("gcc", "tomcatv"),
    settings: ExperimentSettings | None = None,
) -> dict[str, dict[str, float]]:
    """Quantify the paper's "no issue restrictions" assumption.

    Compares the paper's unrestricted-issue machine against one with
    the real R10000's per-cycle functional units (two integer ALUs,
    two FP units, one load/store unit, one branch).  The single
    load/store unit is the binding restriction -- it collapses the
    machine to one cache port regardless of the cache's port count.
    """
    from repro.cpu.config import R10000_FU_LIMITS

    settings = settings or ExperimentSettings()
    restricted = replace(settings, cpu=ProcessorConfig(fu_limits=R10000_FU_LIMITS))
    org = duplicate(32 * KB, line_buffer=True)
    plan = ExecutionPlan()
    keys = {
        (name, mode): plan.add(org, name, varied)
        for name in workloads
        for mode, varied in (
            ("unrestricted", settings),
            ("r10000_units", restricted),
        )
    }
    plan.execute()
    return {
        name: {
            "unrestricted": plan.ipc(keys[(name, "unrestricted")]),
            "r10000_units": plan.ipc(keys[(name, "r10000_units")]),
        }
        for name in workloads
    }
